"""Built-in backend registrations: the seven servable index backends.

Imported lazily by :mod:`repro.api.registry` on first use.  Each
builder normalizes the shared CLI knobs: every builder accepts
``unique``, ``config`` and ``fpp``; backends without a false-positive
knob simply ignore ``fpp``, so one uniform call works for all of them.
"""

from __future__ import annotations

import shutil
import tempfile
import weakref
from typing import Any

from repro.api.registry import register
from repro.baselines.bptree import BPlusTree
from repro.baselines.fd_tree import FDTree
from repro.baselines.hash_index import HashIndex
from repro.baselines.interpolation import SortedFileSearch
from repro.baselines.silt import SiltStore
from repro.core.bf_tree import BFTree, BFTreeConfig


def _build_bf(relation: Any, column: str, *, unique: bool = False,
        config: Any = None, fpp: float | None = None) -> BFTree:
    if config is None and fpp is not None:
        config = BFTreeConfig(fpp=fpp)
    return BFTree.bulk_load(relation, column, config, unique=unique)


def _build_bplus(relation: Any, column: str, *, unique: bool = False,
        config: Any = None, fpp: float | None = None) -> BPlusTree:
    return BPlusTree.bulk_load(relation, column, config, unique=unique)


def _build_hash(relation: Any, column: str, *, unique: bool = False,
        config: Any = None, fpp: float | None = None) -> HashIndex:
    return HashIndex.build(relation, column, unique=unique)


def _build_fd(relation: Any, column: str, *, unique: bool = False,
        config: Any = None, fpp: float | None = None) -> FDTree:
    return FDTree.bulk_load(relation, column, config, unique=unique)


def _build_silt(relation: Any, column: str, *, unique: bool = False,
        config: Any = None, fpp: float | None = None) -> SiltStore:
    # SiltStore's own constructor defaults unique=True (SILT is a KV
    # store), but the registry contract is uniform: unique=False unless
    # the caller says otherwise, so all six backends compare like for
    # like on duplicate-key columns.
    return SiltStore.build(relation, column, config, unique=unique)


def _build_binsearch(relation: Any, column: str, *, unique: bool = False,
        config: Any = None, fpp: float | None = None) -> SortedFileSearch:
    return SortedFileSearch(relation, column, unique=unique)


def _build_durable(relation: Any, column: str, *, unique: bool = False,
        config: Any = None, fpp: float | None = None) -> Any:
    # Registry-built durable indexes get a throwaway WAL directory so
    # they satisfy the uniform builder contract; callers who care where
    # the log lives construct DurableIndex (or make_durable_service)
    # directly with an explicit directory.
    from repro.persist.durable import DurableIndex

    path = tempfile.mkdtemp(prefix="repro-durable-")
    index = DurableIndex(
        _build_bf(relation, column, unique=unique, config=config, fpp=fpp),
        path,
        kind="bf",
        column=column,
        unique=unique,
        fpp=fpp,
        config=config,
    )
    weakref.finalize(index, shutil.rmtree, path, ignore_errors=True)
    return index


register("bf", _build_bf,
         "BF-Tree: Bloom-filter leaves under a B+-Tree directory (the paper)")
register("bplus", _build_bplus,
         "exact page-based B+-Tree baseline")
register("hash", _build_hash,
         "in-memory hash index (point queries, unordered)")
register("fd", _build_fd,
         "FD-Tree: head tree + logarithmic sorted levels on flash")
register("silt", _build_silt,
         "SILT sorted store + in-memory trie (point queries, immutable)")
register("binsearch", _build_binsearch,
         "index-free binary/interpolation search on the sorted data file")
register("durable", _build_durable,
         "WAL + checkpoint wrapper around a BF-Tree (crash-recoverable)")

# Stamp the registry names onto the classes so capability errors and
# reports name the backend as the registry does.
BFTree.backend_name = "bf"
BPlusTree.backend_name = "bplus"
HashIndex.backend_name = "hash"
FDTree.backend_name = "fd"
SiltStore.backend_name = "silt"
SortedFileSearch.backend_name = "binsearch"
