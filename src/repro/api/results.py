"""Canonical result types of the unified :class:`~repro.api.Index` protocol.

Every backend — the BF-Tree and all baselines — returns these from the
protocol operations, so harnesses, the sharded service and the CLI can
consume any backend's output without per-kind branching:

* :class:`SearchResult` from ``search`` / ``search_many``,
* :class:`RangeScanResult` from ``range_scan`` / ``range_scan_many``,
* :class:`DeleteOutcome` from ``delete`` / ``delete_many``.

These classes used to live in :mod:`repro.core.bf_tree`, which still
re-exports them for compatibility; the protocol layer is their home now
because they are contract types, not BF-Tree internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np


def as_scalar(value: Any) -> Any:
    """Normalize a NumPy scalar (or 0-d array) to its native Python value.

    The one shared helper every public entry point funnels keys and scan
    bounds through — reprolint's scalar-leak rule forbids re-deriving it
    with ad-hoc ``hasattr(x, "item")`` probes.  Non-NumPy values pass
    through untouched.
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray) and value.ndim == 0:
        return value.item()
    return value


@dataclass
class SearchResult:
    """Outcome of one point probe."""

    found: bool
    matches: int = 0
    pages_read: int = 0
    false_pages: int = 0
    tids: list[int] = field(default_factory=list)


@dataclass
class RangeScanResult:
    """Outcome of one range scan."""

    matches: int
    pages_read: int
    leaves_visited: int


@dataclass(frozen=True)
class DeleteOutcome:
    """Outcome of one index delete (truthy when the key was removed).

    ``tombstoned`` records the *mechanism*: True when the delete was
    realized as a logical tombstone the index must filter on later reads
    (BF-Tree plain filters, the FD-Tree's logarithmic deletes, a
    counting BF-Tree without a ``pid``) rather than a physical removal —
    the distinction §7's fpp accounting cares about, since tombstones
    and in-place removal degrade a filter differently.
    """

    removed: bool
    tombstoned: bool = False

    def __bool__(self) -> bool:
        return self.removed


def normalize_scan_windows(windows: Iterable[tuple[Any, Any]]
                           ) -> list[tuple[Any, Any]]:
    """Canonicalize a batch of ``(lo, hi)`` scan windows.

    NumPy scalars are unwrapped to Python values and every window is
    validated (``lo > hi`` raises, with the scalar paths' message)
    before any I/O is charged — shared by every ``range_scan_many``
    engine and the sharded scan planner.
    """
    wins: list[tuple[Any, Any]] = []
    for lo, hi in windows:
        lo = as_scalar(lo)
        hi = as_scalar(hi)
        if lo > hi:
            raise ValueError(f"empty range: lo={lo} > hi={hi}")
        wins.append((lo, hi))
    return wins
