"""Workload generators: synthetic relation R, TPCH lineitem dates, SHD,
plus the mixed read/write service traces and unified seed plumbing."""

from repro.workloads import mixed, shd, synthetic, tpch
from repro.workloads.mixed import (
    MIXES,
    OP_INSERT,
    OP_READ,
    OP_SCAN,
    MixedTrace,
    OperationMix,
    ZipfianGenerator,
    generate_trace,
)
from repro.workloads.queries import (
    FIGURE13_FRACTIONS,
    ProbeSet,
    RangeQuery,
    point_probes,
    range_queries,
)
from repro.workloads.seeds import DEFAULT_SEEDS, derive_seed

__all__ = [
    "mixed",
    "shd",
    "synthetic",
    "tpch",
    "MIXES",
    "OP_INSERT",
    "OP_READ",
    "OP_SCAN",
    "MixedTrace",
    "OperationMix",
    "ZipfianGenerator",
    "generate_trace",
    "FIGURE13_FRACTIONS",
    "ProbeSet",
    "RangeQuery",
    "point_probes",
    "range_queries",
    "DEFAULT_SEEDS",
    "derive_seed",
]
