"""Workload generators: synthetic relation R, TPCH lineitem dates, SHD."""

from repro.workloads import shd, synthetic, tpch
from repro.workloads.queries import (
    FIGURE13_FRACTIONS,
    ProbeSet,
    RangeQuery,
    point_probes,
    range_queries,
)

__all__ = [
    "shd",
    "synthetic",
    "tpch",
    "FIGURE13_FRACTIONS",
    "ProbeSet",
    "RangeQuery",
    "point_probes",
    "range_queries",
]
