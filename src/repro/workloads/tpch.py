"""TPCH lineitem surrogate: the three correlated date columns (§1.1, §6.4).

The paper indexes the ``shipdate`` of lineitem (scale factor 1): tuples
are 200 bytes, ordered/partitioned on shipdate, with every date repeated
about 2400 times.  TPCH's dbgen derives the three dates per line item
as::

    shipdate    = orderdate + uniform(1, 121)
    commitdate  = orderdate + uniform(30, 90)
    receiptdate = shipdate  + uniform(1, 30)

over a ~2526-day order-date window (1992-01-01 .. 1998-12-01).  Because
orders arrive in date order, the three dates of consecutive rows stay
close — the implicit clustering Figure 1(a) shows.  This generator
reproduces those statistics at any scale, then sorts rows on shipdate
(the paper's partitioning) while keeping the other two dates attached.
"""

from __future__ import annotations

import numpy as np

from repro.storage.relation import Relation

TUPLE_SIZE = 200
ORDER_DATE_SPAN_DAYS = 2526     # 1992-01-01 .. 1998-12-01
DEFAULT_TUPLES = 1 << 16


def generate(
    n_tuples: int = DEFAULT_TUPLES,
    seed: int = 7,
    sort_on: str = "shipdate",
    name: str = "lineitem",
) -> Relation:
    """Build a lineitem-like relation with shipdate/commitdate/receiptdate.

    Dates are integer day offsets from 1992-01-01.  Rows are sorted on
    ``sort_on`` (default shipdate, matching the paper's partitioning);
    pass ``sort_on=None`` to keep creation (orderdate) order, which is
    what Figure 1(a) plots.
    """
    if n_tuples <= 0:
        raise ValueError("n_tuples must be positive")
    rng = np.random.default_rng(seed)
    # Orders arrive uniformly over the window, in creation order.
    orderdate = np.sort(rng.integers(0, ORDER_DATE_SPAN_DAYS, size=n_tuples))
    shipdate = orderdate + rng.integers(1, 122, size=n_tuples)
    commitdate = orderdate + rng.integers(30, 91, size=n_tuples)
    receiptdate = shipdate + rng.integers(1, 31, size=n_tuples)
    columns = {
        "orderdate": orderdate.astype(np.int64),
        "shipdate": shipdate.astype(np.int64),
        "commitdate": commitdate.astype(np.int64),
        "receiptdate": receiptdate.astype(np.int64),
    }
    if sort_on is not None:
        order = np.argsort(columns[sort_on], kind="stable")
        columns = {k: v[order] for k, v in columns.items()}
    return Relation(columns, tuple_size=TUPLE_SIZE, name=name)


def shipdate_cardinality(relation: Relation) -> float:
    """Mean rows per shipdate (the paper reports ~2400 at SF1)."""
    ship = np.asarray(relation.columns["shipdate"])
    return len(ship) / max(1, len(np.unique(ship)))


def clustering_series(relation: Relation, first_n: int = 10_000
                      ) -> dict[str, np.ndarray]:
    """Figure 1(a): the three dates of the first ``first_n`` rows."""
    take = min(first_n, relation.ntuples)
    return {
        column: np.asarray(relation.columns[column][:take])
        for column in ("shipdate", "commitdate", "receiptdate")
    }


def clustering_spread(relation: Relation, first_n: int = 10_000) -> float:
    """Mean |commitdate - shipdate| over the window — small spread is the
    quantitative signature of implicit clustering."""
    series = clustering_series(relation, first_n)
    return float(np.mean(np.abs(series["commitdate"] - series["shipdate"])))
