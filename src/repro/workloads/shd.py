"""Smart Home Dataset (SHD) surrogate (paper §1.1, §6.5).

The paper's SHD comes from the EU BigFoot project's electricity
monitoring feed: timestamped rows carrying current consumption, aggregate
consumption and sensor readings for many clients.  The published
statistics we reproduce:

* the index key is the timestamp, with **average cardinality 52** rows
  per timestamp,
* per-timestamp cardinality ranges **21 .. 8295**, with **99.7% of
  timestamps at cardinality <= 126** (a heavy upper tail),
* timestamps are increasing (implicit clustering, Figure 1(b)), and the
  per-client aggregate energy increases monotonically within a billing
  cycle, at varying pace.

The real feed is proprietary; this generator is the synthetic equivalent
that exercises the same code paths — a variable-cardinality clustered
key, which is exactly what §6.5 stresses.
"""

from __future__ import annotations

import numpy as np

from repro.storage.relation import Relation

TUPLE_SIZE = 128
DEFAULT_TUPLES = 1 << 16

AVG_CARDINALITY = 52
MIN_CARDINALITY = 21
MAX_CARDINALITY = 8295
BULK_QUANTILE = 0.997          # fraction of timestamps at cardinality <= 126
BULK_MAX_CARDINALITY = 126


def generate(
    n_tuples: int = DEFAULT_TUPLES,
    seed: int = 99,
    n_clients: int = 64,
    name: str = "shd",
) -> Relation:
    """Build the SHD surrogate: timestamp, client, aggregate energy.

    Cardinalities are drawn from a two-part mixture: 99.7% of timestamps
    draw from a truncated normal inside [21, 126] tuned so the overall
    mean lands near 52; the remaining 0.3% draw log-uniformly from
    (126, 8295], reproducing the heavy tail.
    """
    if n_tuples <= 0:
        raise ValueError("n_tuples must be positive")
    rng = np.random.default_rng(seed)
    cardinalities = _cardinalities(n_tuples, rng)
    timestamps = np.repeat(
        np.arange(len(cardinalities), dtype=np.int64), cardinalities
    )[:n_tuples]
    clients = rng.integers(0, n_clients, size=n_tuples).astype(np.int64)
    energy = _aggregate_energy(clients, n_clients, rng)
    return Relation(
        {"timestamp": timestamps, "client": clients, "energy": energy},
        tuple_size=TUPLE_SIZE,
        name=name,
    )


def _cardinalities(n_tuples: int, rng: np.random.Generator) -> np.ndarray:
    """Per-timestamp row counts matching the published SHD statistics."""
    estimated = max(4, 2 * n_tuples // AVG_CARDINALITY)
    counts: list[int] = []
    total = 0
    while total < n_tuples:
        if rng.random() < BULK_QUANTILE:
            # Truncated normal in the bulk range; mean tuned toward 50 so
            # the tail lifts the overall average to ~52.
            value = int(rng.normal(47.0, 18.0))
            value = max(MIN_CARDINALITY, min(BULK_MAX_CARDINALITY, value))
        else:
            log_lo = np.log(BULK_MAX_CARDINALITY + 1)
            log_hi = np.log(MAX_CARDINALITY)
            value = int(np.exp(rng.uniform(log_lo, log_hi)))
            value = min(MAX_CARDINALITY, max(BULK_MAX_CARDINALITY + 1, value))
        counts.append(value)
        total += value
        if len(counts) > 100 * estimated:  # pragma: no cover - safety valve
            break
    return np.asarray(counts, dtype=np.int64)


def _aggregate_energy(clients: np.ndarray, n_clients: int,
                      rng: np.random.Generator) -> np.ndarray:
    """Per-client monotonically increasing aggregate consumption."""
    energy = np.zeros(len(clients), dtype=np.float64)
    totals = rng.uniform(0.0, 100.0, size=n_clients)
    rates = rng.uniform(0.01, 0.5, size=n_clients)
    for i, client in enumerate(clients):
        totals[client] += rng.exponential(rates[client])
        energy[i] = totals[client]
    return energy


def cardinality_profile(relation: Relation) -> dict[str, float]:
    """Observed cardinality statistics (to compare with the paper's)."""
    timestamps = np.asarray(relation.columns["timestamp"])
    __, counts = np.unique(timestamps, return_counts=True)
    if len(counts) > 1:
        counts = counts[:-1]   # the final timestamp group is truncated
    return {
        "mean": float(counts.mean()),
        "min": float(counts.min()),
        "max": float(counts.max()),
        "p997": float(np.quantile(counts, BULK_QUANTILE)),
    }


def clustering_series(relation: Relation, first_n: int = 100_000
                      ) -> dict[str, np.ndarray]:
    """Figure 1(b): timestamp and aggregate energy of the first rows."""
    take = min(first_n, relation.ntuples)
    return {
        "timestamp": np.asarray(relation.columns["timestamp"][:take]),
        "energy": np.asarray(relation.columns["energy"][:take]),
    }
