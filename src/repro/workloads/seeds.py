"""Unified seed plumbing for every workload generator.

The generators historically shipped scattered defaults — synthetic data
at seed 42, point probes at 1234, range queries at 77 — which made a
"fully reproducible run" require remembering several knobs.
:func:`derive_seed` collapses them into one: given a single *master*
seed, each named stream gets its own deterministic, well-separated child
seed.

Given no master seed (``None``), each stream falls back to the default
listed in :data:`DEFAULT_SEEDS`.  Note that the ``relation`` fallback
(42) is the *synthetic* generator's historical default only — the TPCH
and SHD generators default to their own seeds (7 and 99); to keep a
generator's historical data bit-identical without a master seed, omit
the ``seed`` argument entirely rather than passing a derived one (the
CLI does exactly this).

The CLI threads one ``--seed`` flag through here; library callers can do
the same::

    seed = None if master is None else derive_seed(master, "relation")
    relation = tpch.generate(n) if seed is None else tpch.generate(n, seed=seed)
    probes = point_probes(rel, col, seed=derive_seed(master, "probes"))
"""

from __future__ import annotations

import zlib

#: Per-stream fallbacks when no master seed is given.  ``probes``,
#: ``ranges`` and ``trace`` match their generators' historical defaults
#: exactly; ``relation`` matches the synthetic generator's (tpch/shd
#: have their own defaults — omit the kwarg to keep those, see module
#: docstring).
DEFAULT_SEEDS: dict[str, int] = {
    "relation": 42,     # synthetic.generate
    "probes": 1234,     # queries.point_probes
    "ranges": 77,       # queries.range_queries
    "trace": 7,         # mixed.generate_trace
}


def derive_seed(master: int | None, stream: str) -> int:
    """Deterministic child seed for ``stream`` under one ``master`` seed.

    ``master=None`` returns the stream's :data:`DEFAULT_SEEDS` fallback
    (see the module docstring for the ``relation`` caveat).  With a
    master seed, streams are separated by a CRC of the stream name — two
    streams never collide, and the same (master, stream) pair always
    yields the same child seed on every platform.
    """
    if stream not in DEFAULT_SEEDS:
        raise KeyError(
            f"unknown seed stream {stream!r}; known: {sorted(DEFAULT_SEEDS)}"
        )
    if master is None:
        return DEFAULT_SEEDS[stream]
    return (master * 0x9E3779B1 + zlib.crc32(stream.encode())) % (2**31 - 1)
