"""Probe-key generators with controlled hit rate (paper §6.1, §6.4).

The paper's experiments average a thousand index probes with random keys;
§6.4 additionally varies the *hit rate* — the fraction of probes whose
key actually exists — from 0% to 100%.  :func:`point_probes` produces
such a key sequence deterministically; :func:`range_queries` produces the
[lo, hi] windows of the Figure 13 range-scan experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.storage.relation import Relation


@dataclass(frozen=True)
class ProbeSet:
    """A reproducible batch of point-probe keys."""

    keys: np.ndarray
    expected_hits: np.ndarray      # bool per key

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def hit_rate(self) -> float:
        return float(self.expected_hits.mean()) if len(self.keys) else 0.0


def point_probes(
    relation: Relation,
    column: str,
    n_probes: int = 1000,
    hit_rate: float = 1.0,
    seed: int = 1234,
    miss_mode: str = "mixed",
) -> ProbeSet:
    """Random probe keys with the requested fraction of existing keys.

    Hits are sampled uniformly from the column's distinct values.  Misses
    depend on ``miss_mode``:

    * ``"mixed"`` — sampled from the complement of the key set inside an
      interval twice as wide as the data's key range (within-range gaps
      and out-of-range keys);
    * ``"outside"`` — strictly beyond the data's key range, like the
      paper's 0%-hit TPCH probes for dates "that do not exist" in a dense
      date domain (e.g. dashboard queries about future days).
    """
    if not 0.0 <= hit_rate <= 1.0:
        raise ValueError("hit_rate must be in [0, 1]")
    if miss_mode not in ("mixed", "outside"):
        raise ValueError(f"miss_mode must be 'mixed' or 'outside', got {miss_mode!r}")
    rng = np.random.default_rng(seed)
    values = np.unique(np.asarray(relation.columns[column]))
    n_hits = int(round(n_probes * hit_rate))
    hits = rng.choice(values, size=n_hits, replace=True)
    n_misses = n_probes - n_hits
    if miss_mode == "outside":
        hi = int(values.max())
        span = max(1, hi - int(values.min()))
        misses = hi + 1 + rng.integers(0, span, size=n_misses)
        misses = misses.astype(values.dtype)
    else:
        misses = _sample_misses(values, n_misses, rng)
    keys = np.concatenate([hits, misses])
    expected = np.concatenate(
        [np.ones(n_hits, dtype=bool), np.zeros(len(misses), dtype=bool)]
    )
    order = rng.permutation(len(keys))
    return ProbeSet(keys=keys[order], expected_hits=expected[order])


def _sample_misses(values: np.ndarray, n: int,
                   rng: np.random.Generator) -> np.ndarray:
    if n <= 0:
        return np.empty(0, dtype=values.dtype)
    lo, hi = int(values.min()), int(values.max())
    span = max(1, hi - lo)
    present = set(values.tolist())
    out: list[int] = []
    attempts = 0
    while len(out) < n and attempts < 1000 * n:
        candidate = int(rng.integers(lo - span // 2, hi + span // 2 + 1))
        attempts += 1
        if candidate not in present:
            out.append(candidate)
    if len(out) < n:
        # Dense domain: fall back to keys strictly outside the range.
        out.extend(hi + 1 + i for i in range(n - len(out)))
    return np.asarray(out[:n], dtype=values.dtype)


@dataclass(frozen=True)
class RangeQuery:
    """One [lo, hi] window covering ``fraction`` of the key domain."""

    lo: int
    hi: int
    fraction: float


def range_queries(
    relation: Relation,
    column: str,
    fraction: float,
    n_queries: int = 20,
    seed: int = 77,
) -> list[RangeQuery]:
    """Random range windows each spanning ``fraction`` of the key domain.

    Figure 13 uses fractions 1%, 5%, 10% and 20% of the synthetic
    relation's primary-key domain.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    values = np.asarray(relation.columns[column])
    lo_key, hi_key = int(values.min()), int(values.max())
    domain = hi_key - lo_key + 1
    width = max(1, int(domain * fraction))
    queries: list[RangeQuery] = []
    for _ in range(n_queries):
        start = int(rng.integers(lo_key, max(lo_key + 1, hi_key - width + 2)))
        queries.append(RangeQuery(lo=start, hi=start + width - 1,
                                  fraction=fraction))
    return queries


FIGURE13_FRACTIONS = (0.01, 0.05, 0.10, 0.20)
"""The four range widths of the paper's Figure 13."""
