"""The paper's synthetic relation R (Section 6.1).

256-byte tuples with two indexed attributes, both correlated with
creation time and therefore ordered:

* ``pk``   — 8-byte primary key, unique, strictly increasing;
* ``att1`` — 8-byte timestamp-like attribute, each value repeated 11
  times *on average* (we draw per-value cardinalities around that mean so
  the data is realistic rather than perfectly regular).

The paper's experiments use a 1 GB relation (4M tuples).  Simulated time
scales linearly with tuple count, so the default here is a scaled-down
relation; pass ``n_tuples`` explicitly for other sizes.
"""

from __future__ import annotations

import numpy as np

from repro.storage.relation import Relation

TUPLE_SIZE = 256
DEFAULT_TUPLES = 1 << 16
ATT1_AVG_CARDINALITY = 11


def generate(
    n_tuples: int = DEFAULT_TUPLES,
    avg_cardinality: int = ATT1_AVG_CARDINALITY,
    seed: int = 42,
    name: str = "R",
) -> Relation:
    """Build relation R with ``pk`` and ``att1`` columns.

    ``att1`` cardinalities are drawn from a Poisson distribution around
    ``avg_cardinality`` (clipped to at least 1), then assigned to strictly
    increasing values — the implicit clustering of time-generated data.
    """
    if n_tuples <= 0:
        raise ValueError("n_tuples must be positive")
    rng = np.random.default_rng(seed)
    pk = np.arange(n_tuples, dtype=np.int64)
    att1 = _clustered_column(n_tuples, avg_cardinality, rng)
    return Relation({"pk": pk, "att1": att1}, tuple_size=TUPLE_SIZE, name=name)


def _clustered_column(n: int, avg_cardinality: int,
                      rng: np.random.Generator) -> np.ndarray:
    """Increasing values with Poisson-distributed duplicate counts."""
    estimated_values = max(1, 2 * n // max(1, avg_cardinality))
    counts = rng.poisson(avg_cardinality, size=estimated_values)
    counts = np.clip(counts, 1, None)
    while counts.sum() < n:
        extra = rng.poisson(avg_cardinality, size=estimated_values)
        counts = np.concatenate([counts, np.clip(extra, 1, None)])
    values = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    result: np.ndarray = values[:n]
    return result


def distinct_keys(relation: Relation, column: str) -> np.ndarray:
    """Sorted distinct key values of one column."""
    return np.unique(np.asarray(relation.columns[column]))


def average_cardinality(relation: Relation, column: str) -> float:
    """Observed mean duplicates per distinct value."""
    values = np.asarray(relation.columns[column])
    return len(values) / max(1, len(np.unique(values)))
