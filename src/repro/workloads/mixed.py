"""Mixed read/write workloads with skewed key popularity (YCSB-style).

The paper's evaluation replays single-stream probe loops; a serving
layer needs the traffic a production index actually sees — concurrent
mixes of point reads, index inserts and small range scans whose key
popularity follows a Zipfian law.  This module generates such traffic as
*replayable seeded traces*: a :class:`MixedTrace` is plain NumPy arrays
(op codes, keys, insert page ids, scan widths), so the same seed always
yields the same operation sequence, and the sharded service and the
unsharded index can replay identical work for apples-to-apples
comparison.

Key popularity follows the YCSB convention: ranks are drawn from a
Zipfian(theta) distribution over the column's distinct values and then
*scrambled* through a seeded permutation, so the hot set is spread across
the key domain instead of clustering at the smallest keys (which would
unrealistically favour one index leaf).

The **moving-hotspot** shape (``skew="hotspot"``) is the deliberate
exception: popularity is Zipfian in *distance* from a hot center that
drifts across the key domain in ``phases`` equal phases, and the ranks
are *not* scrambled — spatial locality is the point.  Each phase melts
the one shard owning the current center while the rest idle, which is
exactly the time-varying skew the elastic serving layer (split/merge +
rebalancer) exists to absorb.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.storage.relation import Relation
from repro.workloads.seeds import derive_seed

# Operation codes stored in MixedTrace.ops.
OP_READ = 0
OP_INSERT = 1
OP_SCAN = 2

OP_NAMES = {OP_READ: "read", OP_INSERT: "insert", OP_SCAN: "scan"}


@dataclass(frozen=True)
class OperationMix:
    """Fractions of point reads, index inserts and range scans."""

    name: str
    read: float
    insert: float
    scan: float = 0.0

    def __post_init__(self) -> None:
        total = self.read + self.insert + self.scan
        if any(f < 0 for f in (self.read, self.insert, self.scan)):
            raise ValueError(f"negative fraction in mix {self.name!r}")
        if not np.isclose(total, 1.0):
            raise ValueError(
                f"mix {self.name!r} fractions sum to {total}, expected 1.0"
            )

    @property
    def probabilities(self) -> tuple[float, float, float]:
        return (self.read, self.insert, self.scan)


#: The standard operation mixes of the service benchmarks, named after
#: their YCSB cousins: C (read-only), B (read-heavy), A (balanced),
#: load-style insert-heavy, and E-style scan mix.
MIXES: dict[str, OperationMix] = {
    "read_only": OperationMix("read_only", read=1.0, insert=0.0),
    "read_heavy": OperationMix("read_heavy", read=0.95, insert=0.05),
    "balanced": OperationMix("balanced", read=0.50, insert=0.50),
    "insert_heavy": OperationMix("insert_heavy", read=0.05, insert=0.95),
    "scan_mix": OperationMix("scan_mix", read=0.75, insert=0.05, scan=0.20),
}


class ZipfianGenerator:
    """Vectorized YCSB Zipfian rank generator over ``n`` items.

    Implements the classic Gray et al. quantile transform used by YCSB's
    ``ZipfianGenerator``: rank 0 is the most popular item and popularity
    decays as ``1 / rank^theta``.  ``theta`` must be in (0, 1); YCSB's
    default is 0.99 (heavily skewed: with n=10k, the top 1% of items
    draw roughly half the accesses).
    """

    def __init__(self, n: int, theta: float = 0.99) -> None:
        if n < 1:
            raise ValueError("need at least one item")
        if not 0.0 < theta < 1.0:
            raise ValueError(f"theta must be in (0, 1), got {theta}")
        self.n = n
        self.theta = theta
        ranks = np.arange(1, n + 1, dtype=np.float64)
        self._zetan = float(np.sum(ranks**-theta))
        self._zeta2 = 1.0 + 0.5**theta
        self._alpha = 1.0 / (1.0 - theta)
        denominator = 1.0 - self._zeta2 / self._zetan
        self._eta = (
            (1.0 - (2.0 / n) ** (1.0 - theta)) / denominator
            if denominator != 0.0
            else 0.0
        )

    def ranks(self, u: np.ndarray) -> np.ndarray:
        """Map uniform [0,1) draws to Zipfian ranks in [0, n)."""
        u = np.asarray(u, dtype=np.float64)
        uz = u * self._zetan
        tail = (self.n * (self._eta * u - self._eta + 1.0) ** self._alpha)
        tail = np.clip(tail.astype(np.int64), 0, self.n - 1)
        ranks = np.where(uz < 1.0, 0, np.where(uz < self._zeta2, 1, tail))
        return ranks.astype(np.int64)


@dataclass(frozen=True)
class MixedTrace:
    """A replayable, seeded sequence of mixed index operations.

    Arrays are parallel over operations: ``ops[i]`` is the op code,
    ``keys[i]`` the probe/insert/scan-start key, ``tids[i]`` the tuple
    id an insert indexes (-1 for non-inserts; the page id is
    ``relation.page_of(tid)``) and ``scan_widths[i]`` the inclusive key
    width of a scan (0 for non-scans).
    """

    ops: np.ndarray
    keys: np.ndarray
    tids: np.ndarray
    scan_widths: np.ndarray
    mix: OperationMix
    skew: str
    theta: float
    seed: int
    expected_hits: np.ndarray | None = field(repr=False, default=None)

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def n_ops(self) -> int:
        return len(self.ops)

    def count(self, op_code: int) -> int:
        return int(np.count_nonzero(self.ops == op_code))

    @property
    def op_counts(self) -> dict[str, int]:
        return {name: self.count(code) for code, name in OP_NAMES.items()}

    def slice(self, start: int, stop: int | None = None) -> "MixedTrace":
        """A contiguous sub-trace over operations ``[start, stop)``.

        Replaying every window of a sliced trace in order is equivalent
        to replaying the whole trace once — the elastic control loop
        leans on this to interleave rebalance decisions between windows.
        """
        sl = slice(start, stop)
        return MixedTrace(
            ops=self.ops[sl],
            keys=self.keys[sl],
            tids=self.tids[sl],
            scan_widths=self.scan_widths[sl],
            mix=self.mix,
            skew=self.skew,
            theta=self.theta,
            seed=self.seed,
            expected_hits=(
                None if self.expected_hits is None
                else self.expected_hits[sl]
            ),
        )

    def iter_windows(self, window_ops: int) -> "Iterator[MixedTrace]":
        """Yield consecutive :meth:`slice` windows of ``window_ops`` ops."""
        if window_ops < 1:
            raise ValueError("window_ops must be >= 1")
        for start in range(0, len(self), window_ops):
            yield self.slice(start, start + window_ops)


def generate_trace(
    relation: Relation,
    column: str,
    mix: OperationMix | str = "read_heavy",
    n_ops: int = 1000,
    skew: str = "zipfian",
    theta: float = 0.99,
    seed: int | None = None,
    hit_rate: float = 1.0,
    max_scan_keys: int = 100,
    phases: int = 4,
    hotspot_width: float = 0.25,
) -> MixedTrace:
    """Generate a seeded mixed-workload trace against one indexed column.

    * Reads draw keys by popularity (``skew="zipfian"``, ``"uniform"``
      or ``"hotspot"``) from the column's distinct values; a
      ``hit_rate`` below 1.0 replaces the complement fraction with keys
      beyond the key domain (guaranteed misses, as in §6.4's hit-rate
      sweeps).
    * ``skew="hotspot"`` is the moving-hotspot shape: the trace is cut
      into ``phases`` equal phases; within phase ``p`` keys cluster
      around a hot center at position ``(p + 0.5) / phases`` of the
      distinct-value range, with Zipfian(theta)-distributed distance
      from the center spanning about ``hotspot_width`` of the domain.
      Unlike the other shapes the ranks are *not* scrambled — the hot
      set is a contiguous key region that drifts, concentrating load on
      one shard at a time.
    * Inserts re-index a popular key at its true data page — the only
      write the simulator's immutable relation admits, but one that
      exercises the full leaf write/split path.
    * Scans start at a popular key and span a uniform width of
      1..``max_scan_keys`` key values (YCSB-E convention).

    The same ``(relation, column, mix, n_ops, skew, theta, seed,
    hit_rate, max_scan_keys, phases, hotspot_width)`` tuple always
    produces the identical trace.
    """
    if isinstance(mix, str):
        try:
            mix = MIXES[mix]
        except KeyError:
            raise ValueError(
                f"unknown mix {mix!r}; pick from {sorted(MIXES)}"
            ) from None
    if skew not in ("zipfian", "uniform", "hotspot"):
        raise ValueError(
            f"skew must be 'zipfian', 'uniform' or 'hotspot', got {skew!r}"
        )
    if not 0.0 <= hit_rate <= 1.0:
        raise ValueError("hit_rate must be in [0, 1]")
    if n_ops < 1:
        raise ValueError("n_ops must be positive")
    if phases < 1:
        raise ValueError("phases must be >= 1")
    if not 0.0 < hotspot_width <= 1.0:
        raise ValueError("hotspot_width must be in (0, 1]")
    seed = derive_seed(None, "trace") if seed is None else seed
    rng = np.random.default_rng(seed)

    values = np.asarray(relation.columns[column])
    distinct = np.unique(values)
    n_distinct = len(distinct)

    # Operation schedule.
    ops = rng.choice(
        np.array([OP_READ, OP_INSERT, OP_SCAN], dtype=np.uint8),
        size=n_ops,
        p=mix.probabilities,
    ).astype(np.uint8)

    # Popularity-ranked key choice.  zipfian/uniform scramble the ranks
    # across the domain (YCSB convention); hotspot deliberately does
    # not — its popularity is Zipfian in *distance* from a drifting
    # center, so the hot set is spatially contiguous.
    u = rng.random(n_ops)
    if skew == "hotspot" and n_distinct > 1:
        window = max(1, int(round(hotspot_width * n_distinct)))
        # Zipfian rank = distance rank within the hot window; split it
        # into a magnitude and a seeded side so the hotspot is roughly
        # symmetric around the center.
        ranks = ZipfianGenerator(window, theta).ranks(u)
        signs = rng.choice(np.array([-1, 1], dtype=np.int64), size=n_ops)
        offsets = signs * ((ranks + 1) // 2)
        phase = (np.arange(n_ops, dtype=np.int64) * phases) // n_ops
        centers = (
            (phase.astype(np.float64) + 0.5) / phases * n_distinct
        ).astype(np.int64)
        pos = np.clip(centers + offsets, 0, n_distinct - 1)
        keys = distinct[pos].copy()
    else:
        if skew == "zipfian" and n_distinct > 1:
            ranks = ZipfianGenerator(n_distinct, theta).ranks(u)
        else:
            ranks = np.minimum((u * n_distinct).astype(np.int64),
                               n_distinct - 1)
        scramble = rng.permutation(n_distinct)
        keys = distinct[scramble[ranks]].copy()
    expected = np.ones(n_ops, dtype=bool)

    # Misses: only meaningful for reads; replace the requested fraction
    # with keys strictly beyond the domain.
    if hit_rate < 1.0:
        read_idx = np.nonzero(ops == OP_READ)[0]
        n_miss = int(round(len(read_idx) * (1.0 - hit_rate)))
        if n_miss:
            miss_idx = rng.choice(read_idx, size=n_miss, replace=False)
            hi = int(distinct.max())
            span = max(1, hi - int(distinct.min()))
            # Clamp the beyond-domain draws to the column's dtype max: a
            # key dtype near its max (int32/int16, or int64 itself)
            # would otherwise wrap ``hi + 1 + draw`` around to an
            # in-domain (or below-domain) value — a "guaranteed miss"
            # that may actually hit while ``expected_hits`` still says
            # miss.  The offsets are drawn *before* the add so the
            # clamp (``offset <= dtype_max - hi - 1``) keeps the sum
            # representable instead of overflowing first.
            offsets = rng.integers(0, span, size=n_miss)
            if np.issubdtype(keys.dtype, np.integer):
                dtype_max = int(np.iinfo(keys.dtype).max)
                if hi >= dtype_max:
                    raise ValueError(
                        f"column {column!r} reaches its dtype max "
                        f"({dtype_max}): no out-of-domain miss key is "
                        "representable; use hit_rate=1.0 or a wider "
                        "key dtype"
                    )
                offsets = np.minimum(offsets, min(dtype_max - hi - 1, span))
            keys[miss_idx] = (hi + 1 + offsets).astype(keys.dtype)
            expected[miss_idx] = False

    # Insert targets: the first tuple actually holding the key (ordered
    # column => searchsorted finds the first occurrence).
    tids = np.full(n_ops, -1, dtype=np.int64)
    ins_idx = np.nonzero(ops == OP_INSERT)[0]
    if len(ins_idx):
        first_tid = np.searchsorted(values, keys[ins_idx], side="left")
        tids[ins_idx] = np.minimum(first_tid, relation.ntuples - 1)

    # Scan widths (inclusive key span), YCSB-E style uniform short scans.
    widths = np.zeros(n_ops, dtype=np.int64)
    scan_idx = np.nonzero(ops == OP_SCAN)[0]
    if len(scan_idx):
        widths[scan_idx] = rng.integers(
            1, max(2, max_scan_keys + 1), size=len(scan_idx)
        )

    return MixedTrace(
        ops=ops,
        keys=keys,
        tids=tids,
        scan_widths=widths,
        mix=mix,
        skew=skew,
        theta=theta,
        seed=seed,
        expected_hits=expected,
    )
