"""repro — a full reproduction of "BF-Tree: Approximate Tree Indexing"
(Athanassoulis & Ailamaki, PVLDB 7(14), 2014).

Top-level re-exports cover the public API a downstream user needs:

* :class:`BFTree` / :class:`BFTreeConfig` — the paper's contribution.
* Baselines: B+-Tree, hash index, FD-Tree, SILT, sorted-file search
  (in :mod:`repro.baselines`).
* The unified Index protocol and backend registry
  (:mod:`repro.api`): :func:`make_index` builds any registered
  backend, :func:`register` adds new ones, and every backend speaks
  the same search/insert/delete/range_scan (+ batch) contract.
* Storage simulator: :func:`build_stack`, the five paper configurations.
* Workload generators for the synthetic relation R, TPCH lineitem dates
  and the smart-home dataset (in :mod:`repro.workloads`).
"""

from repro.api import (
    Capabilities,
    Index,
    UnsupportedOperationError,
    make_index,
    register,
    registered_backends,
)
from repro.core import BFTree, BFTreeConfig, BloomFilter
from repro.service import Router, ShardedIndex
from repro.storage import (
    FIVE_CONFIGS,
    PAGE_SIZE,
    Relation,
    StorageConfig,
    StorageStack,
    build_stack,
)

__version__ = "1.0.0"

__all__ = [
    "BFTree",
    "BFTreeConfig",
    "BloomFilter",
    "Capabilities",
    "Index",
    "UnsupportedOperationError",
    "make_index",
    "register",
    "registered_backends",
    "Router",
    "ShardedIndex",
    "FIVE_CONFIGS",
    "PAGE_SIZE",
    "Relation",
    "StorageConfig",
    "StorageStack",
    "build_stack",
    "__version__",
]
