"""Atomic checkpoint manifest: the commit point of a checkpoint.

The manifest is a small JSON file recording the backend kind, build
inputs (column, uniqueness, fpp, config, seed), capability descriptor,
the generation-named snapshot file's name, size and CRC32, and the name
of the WAL *generation* that starts after the checkpoint.  It is written atomically — temp
file, flush, fsync, ``os.replace``, directory fsync — so recovery
always sees either the previous complete checkpoint or the new one,
never a torn in-between.

WAL rotation rides the manifest's atomicity: each checkpoint names a
fresh ``wal-<generation>.log`` in the manifest *before* creating it.
If a crash lands between manifest commit and WAL creation, replay of
the (missing) new log is simply empty — the stale previous-generation
log is never replayed, so checkpointed ops cannot be applied twice.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.persist.errors import CorruptManifestError

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_VERSION = 1


def atomic_write_json(path: str | Path, data: dict[str, Any]) -> None:
    """Write JSON with write-temp / fsync / rename atomicity."""
    target = Path(path)
    payload = json.dumps(data, indent=2, sort_keys=True).encode("utf-8")
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "wb") as f:
        f.write(payload)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, target)
    _fsync_dir(target.parent)


def write_manifest(path: str | Path, data: dict[str, Any]) -> None:
    atomic_write_json(path, {"version": MANIFEST_VERSION, **data})


def read_manifest(
    path: str | Path,
    *,
    versions: tuple[int, ...] = (MANIFEST_VERSION,),
) -> dict[str, Any]:
    """Parse and validate a manifest; raise :class:`CorruptManifestError`.

    ``versions`` is the set of format versions the caller can decode —
    shard manifests are at version 1, service manifests accept both the
    legacy ordinal-keyed layout (1) and the stable-id layout (2).
    """
    p = Path(path)
    try:
        raw = p.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise CorruptManifestError(f"manifest missing: {p}") from None
    try:
        data = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise CorruptManifestError(
            f"manifest {p.name} is not valid JSON: {exc}"
        ) from None
    if not isinstance(data, dict):
        raise CorruptManifestError(
            f"manifest {p.name} is {type(data).__name__}, not an object"
        )
    if data.get("version") not in versions:
        expected = "/".join(str(v) for v in versions)
        raise CorruptManifestError(
            f"manifest {p.name} has version {data.get('version')!r}, "
            f"expected {expected}"
        )
    return data


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)
