"""Write-ahead log: length+CRC32-framed JSON records, fsync-batched.

Frame layout (little-endian)::

    u32 payload_length | u32 crc32(payload) | payload (compact JSON)

One frame per logged mutation — ``insert`` / ``delete`` carry the op's
key and *native* write target (``write_target`` has already been applied
by the caller, so replay feeds the target straight back to the backend);
``insert_many`` / ``delete_many`` carry parallel key/target lists and
replay as one batch call, exactly as they were issued.

Durability contract: a record is *acknowledged* once :meth:`
WriteAheadLog.sync` has run past it (``sync_every`` batches fsyncs).
On replay, :func:`replay_wal` stops at the first incomplete, checksum-
failing or unparsable frame — a torn tail from a crash mid-write — and
reports the byte offset of the last good frame so the caller can
truncate the tail away.  A half-written frame is therefore never
half-applied: it simply does not exist after recovery.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Any, BinaryIO

from repro.persist.errors import PersistError

_FRAME = struct.Struct("<II")  # (payload length, CRC32 of payload)


class WriteAheadLog:
    """Append-only framed log with batched fsync.

    ``sync_every=1`` (the default) fsyncs after every record — each op
    is acknowledged as soon as ``append`` returns.  Larger values batch
    ``sync_every`` records per fsync; unsynced records may be lost in a
    crash, which is exactly the acknowledged-ops contract the kill-9
    recovery test verifies.
    """

    def __init__(self, path: str | Path, *, sync_every: int = 1) -> None:
        if sync_every < 1:
            raise ValueError(f"sync_every must be >= 1, got {sync_every}")
        self.path = Path(path)
        self.sync_every = sync_every
        self._file: BinaryIO = open(self.path, "ab")
        self._pending = 0

    def append(self, record: dict[str, Any]) -> None:
        """Frame and write one record; fsync when the batch fills."""
        payload = json.dumps(
            record, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
        self._file.write(_FRAME.pack(len(payload), zlib.crc32(payload)))
        self._file.write(payload)
        self._pending += 1
        if self._pending >= self.sync_every:
            self.sync()

    def sync(self) -> None:
        """Flush and fsync: everything appended so far is acknowledged."""
        self._file.flush()
        os.fsync(self._file.fileno())
        self._pending = 0

    def rollback(self, offset: int) -> None:
        """Durably cut the log back to ``offset``.

        The compensating action for WAL-before-apply: when the inner op
        raises after its record was framed (and possibly fsynced), the
        caller rolls the log back so a crash-recovery replay cannot
        resurrect an op its caller observed as failed.  The truncation
        is itself fsynced; records before ``offset`` are acknowledged as
        a side effect.
        """
        self._file.flush()
        os.truncate(self._file.fileno(), offset)
        os.fsync(self._file.fileno())
        self._file.seek(offset)
        self._pending = 0

    def close(self) -> None:
        if not self._file.closed:
            self.sync()
            self._file.close()

    @property
    def nbytes(self) -> int:
        """Bytes written so far (including any unsynced tail)."""
        return self._file.tell()


def replay_wal(path: str | Path) -> tuple[list[dict[str, Any]], int]:
    """Decode ``(records, valid_bytes)`` from a WAL file.

    Stops at the first torn frame — short header, short payload, CRC
    mismatch, or unparsable JSON — and returns the prefix of intact
    records plus the byte offset they end at.  A missing file is an
    empty log (fresh post-checkpoint state), not an error.
    """
    p = Path(path)
    if not p.exists():
        return [], 0
    data = p.read_bytes()
    records: list[dict[str, Any]] = []
    offset = 0
    while True:
        if offset + _FRAME.size > len(data):
            break
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > len(data):
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        if not isinstance(record, dict):
            break
        records.append(record)
        offset = end
    return records, offset


def truncate_wal(path: str | Path, valid_bytes: int) -> None:
    """Cut a torn tail off the log so later appends start clean."""
    p = Path(path)
    if p.exists() and p.stat().st_size > valid_bytes:
        os.truncate(p, valid_bytes)


def apply_record(index: Any, record: dict[str, Any]) -> None:
    """Re-apply one replayed WAL record to ``index`` (no re-logging)."""
    op = record.get("op")
    if op == "insert":
        index.insert(record["key"], int(record["target"]))
    elif op == "delete":
        target = record["target"]
        index.delete(record["key"], None if target is None else int(target))
    elif op == "insert_many":
        index.insert_many(list(record["keys"]),
                          [int(t) for t in record["targets"]])
    elif op == "delete_many":
        targets = record["targets"]
        index.delete_many(
            list(record["keys"]),
            None if targets is None else [
                None if t is None else int(t) for t in targets
            ],
        )
    else:
        raise PersistError(f"unknown WAL op {op!r}")
