"""DurableIndex: WAL + checkpoint wrapper around any registered backend.

The wrapper owns one directory::

    <dir>/MANIFEST.json        atomic commit point (see manifest.py)
    <dir>/snapshot.bin         checksummed structural snapshot
    <dir>/wal-<generation>.log framed mutation log since the checkpoint

Every mutation is logged *before* it is applied (WAL-before-apply), and
acknowledged once the log record is fsynced (``sync_every`` batches
fsyncs).  :meth:`DurableIndex.checkpoint` snapshots the inner backend's
structural state through the protocol's ``snapshot_state()`` hook,
commits the manifest, and rotates to a fresh WAL generation.
:func:`recover` rebuilds the backend from the manifest's build inputs,
restores the snapshot, replays the WAL tail (truncating any torn
frames), and returns a live wrapper — the recovered tree is
*bit-identical* to the crashed one up to the last acknowledged op: same
search/scan results, same simulated I/O charges, same structural
sanitizer verdict.

Reads delegate straight to the inner backend; the WAL is real file I/O
outside the storage simulator, so durability never perturbs IOStats or
the simulated clock.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any, Sequence

from repro.api.protocol import Capabilities, Index, IndexBackend
from repro.api.results import (
    DeleteOutcome,
    RangeScanResult,
    SearchResult,
    as_scalar,
)
from repro.persist.errors import CorruptManifestError, CorruptSnapshotError
from repro.persist.manifest import MANIFEST_NAME, read_manifest, write_manifest
from repro.persist.snapshot import file_crc32, read_snapshot, write_snapshot
from repro.persist.wal import (
    WriteAheadLog,
    apply_record,
    replay_wal,
    truncate_wal,
)

SNAPSHOT_NAME = "snapshot.bin"


def _wal_name(generation: int) -> str:
    return f"wal-{generation:08d}.log"


class DurableIndex(IndexBackend):
    """Crash-safe wrapper conforming to the same Index protocol.

    ``kind`` / ``column`` / ``unique`` / ``fpp`` / ``seed`` are the
    build inputs recorded in the manifest so :func:`recover` can
    reconstruct the inner backend via the registry before restoring
    its snapshot.
    """

    backend_name = "durable"
    supports_sharding = False

    def __init__(
        self,
        inner: Index,
        directory: str | Path,
        *,
        sync_every: int = 1,
        checkpoint_every: int | None = None,
        kind: str | None = None,
        column: str | None = None,
        unique: bool = False,
        fpp: float | None = None,
        seed: int | None = None,
        _recovered_generation: int | None = None,
    ) -> None:
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1 (or None)")
        self.inner = inner
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sync_every = sync_every
        self.checkpoint_every = checkpoint_every
        self._kind = kind if kind is not None else ""
        self._column = column
        self._unique = unique
        self._fpp = fpp
        self._seed = seed
        self._ops_total = 0
        self._ops_since_checkpoint = 0
        self._generation = 0
        self._wal: WriteAheadLog | None = None
        if _recovered_generation is None:
            # Initial checkpoint: the bulk-loaded state must itself be
            # recoverable before the first mutation is acknowledged.
            self.checkpoint()
        else:
            # recover() restored the snapshot and replayed the tail;
            # reopen the manifest's WAL generation in append mode.
            self._generation = _recovered_generation
            self._wal = WriteAheadLog(
                self.directory / _wal_name(self._generation),
                sync_every=sync_every,
            )

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    @property
    def snapshot_path(self) -> Path:
        return self.directory / SNAPSHOT_NAME

    @property
    def wal_path(self) -> Path:
        return self.directory / _wal_name(self._generation)

    # ------------------------------------------------------------------
    # protocol surface: reads delegate, writes log first
    # ------------------------------------------------------------------
    def bind(self, stack: Any, warm: bool = False) -> None:
        self.inner.bind(stack, warm=warm)

    def unbind(self) -> None:
        self.inner.unbind()

    def capabilities(self) -> Capabilities:
        return dataclasses.replace(self.inner.capabilities(), durable=True)

    def write_target(self, tid: int) -> int:
        return self.inner.write_target(tid)

    def search(self, key: Any) -> SearchResult:
        return self.inner.search(key)

    def search_many(self, keys: Sequence[Any],
                    latency_sink: list[float] | None = None
                    ) -> list[SearchResult]:
        return self.inner.search_many(keys, latency_sink=latency_sink)

    def range_scan(self, lo: Any, hi: Any) -> RangeScanResult:
        return self.inner.range_scan(lo, hi)

    def range_scan_many(self, windows: Sequence[tuple[Any, Any]],
                        latency_sink: list[float] | None = None
                        ) -> list[RangeScanResult]:
        return self.inner.range_scan_many(windows,
                                          latency_sink=latency_sink)

    def insert(self, key: Any, target: int) -> None:
        self._require_mutable("insert")
        k = as_scalar(key)
        self._log({"op": "insert", "key": k, "target": int(target)})
        self.inner.insert(k, target)
        self._note_ops(1)

    def delete(self, key: Any, target: int | None = None) -> DeleteOutcome:
        self._require_mutable("delete")
        k = as_scalar(key)
        self._log({"op": "delete", "key": k,
                   "target": None if target is None else int(target)})
        outcome = self.inner.delete(k, target)
        self._note_ops(1)
        return outcome

    def insert_many(self, keys: Sequence[Any], targets: Sequence[int],
                    latency_sink: list[float] | None = None) -> None:
        self._require_mutable("insert_many")
        ks = [as_scalar(k) for k in keys]
        self._log({"op": "insert_many", "keys": ks,
                   "targets": [int(t) for t in targets]})
        self.inner.insert_many(ks, targets, latency_sink=latency_sink)
        self._note_ops(len(ks))

    def delete_many(self, keys: Sequence[Any],
                    targets: Sequence[int | None] | None = None,
                    latency_sink: list[float] | None = None
                    ) -> list[DeleteOutcome]:
        self._require_mutable("delete_many")
        ks = [as_scalar(k) for k in keys]
        self._log({
            "op": "delete_many",
            "keys": ks,
            "targets": None if targets is None else [
                None if t is None else int(t) for t in targets
            ],
        })
        outcomes = self.inner.delete_many(ks, targets,
                                         latency_sink=latency_sink)
        self._note_ops(len(ks))
        return outcomes

    def snapshot_state(self) -> dict[str, Any]:
        return self.inner.snapshot_state()

    def restore_state(self, state: dict[str, Any]) -> None:
        self.inner.restore_state(state)

    @property
    def height(self) -> int:
        return self.inner.height

    @property
    def n_leaves(self) -> int:
        return self.inner.n_leaves

    @property
    def size_pages(self) -> int:
        return self.inner.size_pages

    # ------------------------------------------------------------------
    # durability machinery
    # ------------------------------------------------------------------
    def _require_mutable(self, op: str) -> None:
        if not self.inner.capabilities().mutable:
            raise self._unsupported(op, "mutable")

    def _log(self, record: dict[str, Any]) -> None:
        assert self._wal is not None
        self._wal.append(record)

    def _note_ops(self, n: int) -> None:
        self._ops_total += n
        self._ops_since_checkpoint += n
        if (self.checkpoint_every is not None
                and self._ops_since_checkpoint >= self.checkpoint_every):
            self.checkpoint()

    def checkpoint(self) -> dict[str, Any]:
        """Snapshot the inner backend, commit the manifest, rotate the WAL.

        The manifest write is the commit point: it names the *next* WAL
        generation before that file exists, so a crash at any step
        leaves either the old checkpoint (manifest not yet replaced) or
        the new one with an empty log — never a state that would replay
        already-checkpointed ops.
        """
        old_wal = self._wal
        if old_wal is not None:
            old_wal.close()
            self._wal = None
        nbytes, crc = write_snapshot(self.snapshot_path,
                                     self.inner.snapshot_state())
        generation = self._generation + 1
        manifest: dict[str, Any] = {
            "backend": self._kind,
            "column": self._column,
            "unique": self._unique,
            "fpp": self._fpp,
            "seed": self._seed,
            "capabilities": dataclasses.asdict(self.capabilities()),
            "sync_every": self.sync_every,
            "checkpoint_every": self.checkpoint_every,
            "snapshot": {"file": SNAPSHOT_NAME, "bytes": nbytes,
                         "crc32": crc},
            "wal": {"file": _wal_name(generation),
                    "generation": generation},
            "ops_at_checkpoint": self._ops_total,
        }
        write_manifest(self.manifest_path, manifest)
        stale = self.directory / _wal_name(self._generation)
        self._generation = generation
        self._wal = WriteAheadLog(self.wal_path, sync_every=self.sync_every)
        stale.unlink(missing_ok=True)
        self._ops_since_checkpoint = 0
        return manifest

    def sync(self) -> None:
        """Force-acknowledge any unsynced WAL tail."""
        if self._wal is not None:
            self._wal.sync()

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None


def recover(
    directory: str | Path,
    relation: Any,
    *,
    sync_every: int | None = None,
    checkpoint_every: int | None = None,
) -> DurableIndex:
    """Rebuild a :class:`DurableIndex` from its directory.

    Sequence: read the manifest (commit point), rebuild the inner
    backend from the recorded build inputs via the registry, verify and
    restore the snapshot, replay the WAL tail (truncating torn frames),
    and reopen the log for appending.  Every acknowledged op is
    re-applied; a torn tail op was never acknowledged and disappears.
    """
    from repro.api.registry import make_index

    d = Path(directory)
    manifest = read_manifest(d / MANIFEST_NAME)
    kind = manifest.get("backend")
    column = manifest.get("column")
    if not isinstance(kind, str) or not kind:
        raise CorruptManifestError(
            f"manifest in {d} does not name a backend kind"
        )
    if not isinstance(column, str) or not column:
        raise CorruptManifestError(
            f"manifest in {d} does not name an indexed column"
        )
    unique = bool(manifest.get("unique", False))
    fpp = manifest.get("fpp")
    inner = make_index(kind, relation, column, unique=unique, fpp=fpp)

    snap = manifest.get("snapshot")
    wal_info = manifest.get("wal")
    if not isinstance(snap, dict) or not isinstance(wal_info, dict):
        raise CorruptManifestError(
            f"manifest in {d} lacks snapshot/wal records"
        )
    snapshot_path = d / str(snap["file"])
    try:
        found_crc = file_crc32(snapshot_path)
    except FileNotFoundError:
        raise CorruptSnapshotError(
            f"snapshot file missing: {snapshot_path}"
        ) from None
    if found_crc != int(snap["crc32"]):
        raise CorruptSnapshotError(
            f"snapshot {snapshot_path.name} checksum {found_crc:#010x} "
            f"disagrees with manifest {int(snap['crc32']):#010x}"
        )
    if snapshot_path.stat().st_size != int(snap["bytes"]):
        raise CorruptSnapshotError(
            f"snapshot {snapshot_path.name} is "
            f"{snapshot_path.stat().st_size} bytes, manifest records "
            f"{int(snap['bytes'])}"
        )
    inner.restore_state(read_snapshot(snapshot_path))

    wal_path = d / str(wal_info["file"])
    records, valid_bytes = replay_wal(wal_path)
    truncate_wal(wal_path, valid_bytes)
    for record in records:
        apply_record(inner, record)

    index = DurableIndex(
        inner,
        d,
        sync_every=(int(manifest.get("sync_every", 1))
                    if sync_every is None else sync_every),
        checkpoint_every=(manifest.get("checkpoint_every")
                          if checkpoint_every is None else checkpoint_every),
        kind=kind,
        column=column,
        unique=unique,
        fpp=None if fpp is None else float(fpp),
        seed=manifest.get("seed"),
        _recovered_generation=int(wal_info["generation"]),
    )
    index._ops_total = int(manifest.get("ops_at_checkpoint", 0)) + len(records)
    return index
