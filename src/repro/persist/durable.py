"""DurableIndex: WAL + checkpoint wrapper around any registered backend.

The wrapper owns one directory::

    <dir>/MANIFEST.json             atomic commit point (see manifest.py)
    <dir>/snapshot-<generation>.bin checksummed structural snapshot
    <dir>/wal-<generation>.log      framed mutation log since the checkpoint

Every mutation is logged *before* it is applied (WAL-before-apply), and
acknowledged once the log record is fsynced (``sync_every`` batches
fsyncs).  When the inner op raises instead of applying, the just-written
record is rolled back out of the log (:meth:`WriteAheadLog.rollback`),
so a failed op is never resurrected by replay; if a crash lands inside
that rollback window, replay re-attempts the op, which deterministically
fails against the same tree state and is skipped — at-most-once for
failed ops, exactly-once for acknowledged ones.

:meth:`DurableIndex.checkpoint` snapshots the inner backend's structural
state through the protocol's ``snapshot_state()`` hook into a *new*
generation-named file, commits the manifest, and only then unlinks the
previous generation's snapshot and WAL.  The manifest replace is the
single commit point: a crash anywhere in a checkpoint leaves either the
old complete checkpoint (manifest still names the old snapshot + WAL,
both untouched) or the new one — never a torn in-between.

:func:`recover` rebuilds the backend from the manifest's build inputs
(kind, column, uniqueness, fpp, config, seed), restores the snapshot,
replays the WAL tail (truncating any torn frames), and returns a live
wrapper — the recovered tree is *bit-identical* to the crashed one up to
the last acknowledged op: same search/scan results, same simulated I/O
charges, same structural sanitizer verdict.

Reads delegate straight to the inner backend; the WAL is real file I/O
outside the storage simulator, so durability never perturbs IOStats or
the simulated clock.
"""

from __future__ import annotations

import dataclasses
import importlib
import json
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence, TypeVar

from repro.api.protocol import Capabilities, Index, IndexBackend
from repro.api.results import (
    DeleteOutcome,
    RangeScanResult,
    SearchResult,
    as_scalar,
)
from repro.persist.errors import (
    CorruptManifestError,
    CorruptSnapshotError,
    PersistError,
)
from repro.persist.manifest import MANIFEST_NAME, read_manifest, write_manifest
from repro.persist.snapshot import file_crc32, read_snapshot, write_snapshot
from repro.persist.wal import (
    WriteAheadLog,
    apply_record,
    replay_wal,
    truncate_wal,
)

_T = TypeVar("_T")


def _wal_name(generation: int) -> str:
    return f"wal-{generation:08d}.log"


def snapshot_name(generation: int) -> str:
    """Snapshot file name for one checkpoint generation.

    Snapshots are generation-named (like the WAL) so a checkpoint never
    overwrites the file the committed manifest still references — the
    old snapshot survives until the new manifest replaces it.
    """
    return f"snapshot-{generation:08d}.bin"


def encode_config(config: Any) -> dict[str, Any] | None:
    """Manifest-recordable form of a builder ``config`` object.

    ``None`` stays ``None``; a dataclass (e.g. ``BFTreeConfig``) is
    recorded as its import path plus JSON-safe field dict; any plain
    JSON value is recorded verbatim.  Anything else raises
    :class:`PersistError` — refusing the checkpoint up front beats
    silently recovering a differently-configured structure later.
    """
    if config is None:
        return None
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        cls = type(config)
        fields = dataclasses.asdict(config)
        if not _jsonable(fields):
            raise PersistError(
                f"build config {cls.__name__} has non-JSON-serializable "
                f"fields; a DurableIndex cannot record it in the manifest"
            )
        return {"kind": "dataclass",
                "class": f"{cls.__module__}:{cls.__qualname__}",
                "fields": fields}
    if _jsonable(config):
        return {"kind": "value", "value": config}
    raise PersistError(
        f"build config of type {type(config).__name__} is not recordable "
        f"in the manifest (pass None, a JSON value, or a dataclass with "
        f"JSON-safe fields); refusing to create an unrecoverable checkpoint"
    )


def decode_config(entry: Any) -> Any:
    """Inverse of :func:`encode_config`, used during recovery."""
    if entry is None:
        return None
    if not isinstance(entry, dict):
        raise CorruptManifestError(
            f"manifest config entry is {type(entry).__name__}, not an object"
        )
    kind = entry.get("kind")
    if kind == "value":
        return entry["value"]
    if kind == "dataclass":
        module, _, qualname = str(entry["class"]).partition(":")
        obj: Any = importlib.import_module(module)
        for part in qualname.split("."):
            obj = getattr(obj, part)
        fields = entry.get("fields")
        if not isinstance(fields, dict):
            raise CorruptManifestError(
                "manifest config entry lacks a fields object"
            )
        return obj(**fields)
    raise CorruptManifestError(
        f"manifest config entry has unknown kind {kind!r}"
    )


def _jsonable(value: Any) -> bool:
    try:
        json.dumps(value)
    except (TypeError, ValueError):
        return False
    return True


def _record_op_count(record: dict[str, Any]) -> int:
    """How many ops a WAL record carries (batches count per key)."""
    op = str(record.get("op", ""))
    if op.endswith("_many"):
        return len(record["keys"])
    return 1


class DurableIndex(IndexBackend):
    """Crash-safe wrapper conforming to the same Index protocol.

    ``kind`` / ``column`` / ``unique`` / ``fpp`` / ``config`` / ``seed``
    are the build inputs recorded in the manifest so :func:`recover` can
    reconstruct the inner backend via the registry before restoring its
    snapshot.  ``kind`` and ``column`` are required (an omitted kind
    would commit a manifest no recovery could ever use); ``config`` must
    be manifest-recordable (see :func:`encode_config`); a non-``None``
    ``seed`` is passed back to the registered builder on recovery, so it
    only makes sense for backends whose builder accepts a ``seed``
    keyword.
    """

    backend_name = "durable"
    supports_sharding = False

    def __init__(
        self,
        inner: Index,
        directory: str | Path,
        *,
        kind: str,
        column: str,
        sync_every: int = 1,
        checkpoint_every: int | None = None,
        unique: bool = False,
        fpp: float | None = None,
        config: Any = None,
        seed: int | None = None,
        _recovered_generation: int | None = None,
    ) -> None:
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1 (or None)")
        if not kind:
            raise ValueError(
                "DurableIndex requires a non-empty backend kind (e.g. "
                "kind='bf'); without it recover() could never rebuild "
                "the inner index"
            )
        if not column:
            raise ValueError(
                "DurableIndex requires a non-empty indexed column name; "
                "without it recover() could never rebuild the inner index"
            )
        self.inner = inner
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sync_every = sync_every
        self.checkpoint_every = checkpoint_every
        self._kind = kind
        self._column = column
        self._unique = unique
        self._fpp = fpp
        self._config = config
        self._config_entry = encode_config(config)
        self._seed = seed
        self._ops_total = 0
        self._ops_since_checkpoint = 0
        self._log_suspended = False
        self._generation = 0
        self._wal: WriteAheadLog | None = None
        if _recovered_generation is None:
            # Initial checkpoint: the bulk-loaded state must itself be
            # recoverable before the first mutation is acknowledged.
            self.checkpoint()
        else:
            # recover() restored the snapshot and replayed the tail;
            # reopen the manifest's WAL generation in append mode.
            self._generation = _recovered_generation
            self._wal = WriteAheadLog(
                self.directory / _wal_name(self._generation),
                sync_every=sync_every,
            )

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    @property
    def snapshot_path(self) -> Path:
        return self.directory / snapshot_name(self._generation)

    @property
    def wal_path(self) -> Path:
        return self.directory / _wal_name(self._generation)

    # ------------------------------------------------------------------
    # protocol surface: reads delegate, writes log first
    # ------------------------------------------------------------------
    def bind(self, stack: Any, warm: bool = False) -> None:
        self.inner.bind(stack, warm=warm)

    def unbind(self) -> None:
        self.inner.unbind()

    def capabilities(self) -> Capabilities:
        return dataclasses.replace(self.inner.capabilities(), durable=True)

    def write_target(self, tid: int) -> int:
        return self.inner.write_target(tid)

    def search(self, key: Any) -> SearchResult:
        return self.inner.search(key)

    def search_many(self, keys: Sequence[Any],
                    latency_sink: list[float] | None = None
                    ) -> list[SearchResult]:
        return self.inner.search_many(keys, latency_sink=latency_sink)

    def range_scan(self, lo: Any, hi: Any) -> RangeScanResult:
        return self.inner.range_scan(lo, hi)

    def range_scan_many(self, windows: Sequence[tuple[Any, Any]],
                        latency_sink: list[float] | None = None
                        ) -> list[RangeScanResult]:
        return self.inner.range_scan_many(windows,
                                          latency_sink=latency_sink)

    def insert(self, key: Any, target: int) -> None:
        self._require_mutable("insert")
        k = as_scalar(key)
        self._log_apply(
            {"op": "insert", "key": k, "target": int(target)},
            lambda: self.inner.insert(k, target),
        )
        self._note_ops(1)

    def delete(self, key: Any, target: int | None = None) -> DeleteOutcome:
        self._require_mutable("delete")
        k = as_scalar(key)
        outcome = self._log_apply(
            {"op": "delete", "key": k,
             "target": None if target is None else int(target)},
            lambda: self.inner.delete(k, target),
        )
        self._note_ops(1)
        return outcome

    def insert_many(self, keys: Sequence[Any], targets: Sequence[int],
                    latency_sink: list[float] | None = None) -> None:
        self._require_mutable("insert_many")
        ks = [as_scalar(k) for k in keys]
        self._log_apply(
            {"op": "insert_many", "keys": ks,
             "targets": [int(t) for t in targets]},
            lambda: self.inner.insert_many(ks, targets,
                                           latency_sink=latency_sink),
        )
        self._note_ops(len(ks))

    def delete_many(self, keys: Sequence[Any],
                    targets: Sequence[int | None] | None = None,
                    latency_sink: list[float] | None = None
                    ) -> list[DeleteOutcome]:
        self._require_mutable("delete_many")
        ks = [as_scalar(k) for k in keys]
        outcomes = self._log_apply(
            {
                "op": "delete_many",
                "keys": ks,
                "targets": None if targets is None else [
                    None if t is None else int(t) for t in targets
                ],
            },
            lambda: self.inner.delete_many(ks, targets,
                                           latency_sink=latency_sink),
        )
        self._note_ops(len(ks))
        return outcomes

    def snapshot_state(self) -> dict[str, Any]:
        return self.inner.snapshot_state()

    def restore_state(self, state: dict[str, Any]) -> None:
        self.inner.restore_state(state)

    @property
    def height(self) -> int:
        return self.inner.height

    @property
    def n_leaves(self) -> int:
        return self.inner.n_leaves

    @property
    def size_pages(self) -> int:
        return self.inner.size_pages

    # ------------------------------------------------------------------
    # durability machinery
    # ------------------------------------------------------------------
    def _require_mutable(self, op: str) -> None:
        if not self.inner.capabilities().mutable:
            raise self._unsupported(op, "mutable")

    def _log_apply(self, record: dict[str, Any],
                   apply: Callable[[], _T]) -> _T:
        """WAL-before-apply with compensation.

        The record is framed (and acknowledged per ``sync_every``)
        before the inner op runs; if the op raises, the record is
        rolled back out of the log so replay cannot resurrect an op the
        caller observed as failed.  A failed *batch* op may leave the
        live inner tree partially applied (the backend's own contract),
        but after a crash the whole batch is absent — recovery only
        replays acknowledged records.
        """
        if self._log_suspended:
            return apply()  # reprolint: disable=D1 -- replay path: the op is already framed in the WAL being replayed; logging it again would double-apply it on recovery
        wal = self._wal
        assert wal is not None
        start = wal.nbytes
        wal.append(record)
        try:
            return apply()
        except BaseException:
            wal.rollback(start)
            raise

    def _note_ops(self, n: int) -> None:
        if self._log_suspended:
            return
        self._ops_total += n
        self._ops_since_checkpoint += n
        if (self.checkpoint_every is not None
                and self._ops_since_checkpoint >= self.checkpoint_every):
            self.checkpoint()

    @contextmanager
    def suspended_logging(self) -> Iterator[None]:
        """Apply mutations without writing (or counting) WAL records.

        For state-reconstruction replays of *already-logged* ops: the
        process executor serializes WAL appends through the worker that
        owns a shard, and the parent later re-applies the same batches
        to rebuild its in-memory copy — re-framing those records here
        would duplicate them in the log and double recovery.  Checkpoint
        triggering is suppressed alongside (op counts were taken when
        the records were framed)."""
        prev = self._log_suspended
        self._log_suspended = True
        try:
            yield
        finally:
            self._log_suspended = prev

    def checkpoint(self) -> dict[str, Any]:
        """Snapshot the inner backend, commit the manifest, rotate the WAL.

        The snapshot is written to a fresh generation-named file and the
        manifest names the *next* WAL generation before that file
        exists; the previous generation's snapshot and WAL are unlinked
        only after the manifest replace.  A crash at any step therefore
        leaves either the old checkpoint intact (manifest not yet
        replaced, old snapshot and WAL still on disk) or the new one
        with an empty log — never a state that would fail to recover or
        replay already-checkpointed ops.
        """
        old_wal = self._wal
        if old_wal is not None:
            old_wal.close()
            self._wal = None
        generation = self._generation + 1
        new_snapshot = self.directory / snapshot_name(generation)
        nbytes, crc = write_snapshot(new_snapshot,
                                     self.inner.snapshot_state())
        manifest: dict[str, Any] = {
            "backend": self._kind,
            "column": self._column,
            "unique": self._unique,
            "fpp": self._fpp,
            "config": self._config_entry,
            "seed": self._seed,
            "capabilities": dataclasses.asdict(self.capabilities()),
            "sync_every": self.sync_every,
            "checkpoint_every": self.checkpoint_every,
            "snapshot": {"file": new_snapshot.name, "bytes": nbytes,
                         "crc32": crc},
            "wal": {"file": _wal_name(generation),
                    "generation": generation},
            "ops_at_checkpoint": self._ops_total,
        }
        write_manifest(self.manifest_path, manifest)
        stale_wal = self.directory / _wal_name(self._generation)
        stale_snapshot = self.directory / snapshot_name(self._generation)
        self._generation = generation
        self._wal = WriteAheadLog(self.wal_path, sync_every=self.sync_every)
        stale_wal.unlink(missing_ok=True)
        stale_snapshot.unlink(missing_ok=True)
        self._ops_since_checkpoint = 0
        return manifest

    def sync(self) -> None:
        """Force-acknowledge any unsynced WAL tail."""
        if self._wal is not None:
            self._wal.sync()

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None


def recover(
    directory: str | Path,
    relation: Any,
    *,
    sync_every: int | None = None,
    checkpoint_every: int | None = None,
) -> DurableIndex:
    """Rebuild a :class:`DurableIndex` from its directory.

    Sequence: read the manifest (commit point), rebuild the inner
    backend from the recorded build inputs (kind, column, uniqueness,
    fpp, config, seed) via the registry, verify and restore the
    snapshot, replay the WAL tail (truncating torn frames), and reopen
    the log for appending.  Every acknowledged op is re-applied; a torn
    tail op was never acknowledged and disappears.  A replayed record
    whose op raises is skipped: it can only be the residue of an op
    that failed before its rollback completed, and it deterministically
    fails again here (see :meth:`DurableIndex._log_apply`).
    """
    from repro.api.registry import make_index

    d = Path(directory)
    manifest = read_manifest(d / MANIFEST_NAME)
    kind = manifest.get("backend")
    column = manifest.get("column")
    if not isinstance(kind, str) or not kind:
        raise CorruptManifestError(
            f"manifest in {d} does not name a backend kind"
        )
    if not isinstance(column, str) or not column:
        raise CorruptManifestError(
            f"manifest in {d} does not name an indexed column"
        )
    unique = bool(manifest.get("unique", False))
    fpp = manifest.get("fpp")
    config = decode_config(manifest.get("config"))
    seed = manifest.get("seed")
    build_extra: dict[str, Any] = {}
    if config is not None:
        build_extra["config"] = config
    if seed is not None:
        # Only forwarded when recorded: built-in builders take no seed,
        # and a manifest only records one when the original caller
        # passed it (to a builder that accepts it).
        build_extra["seed"] = seed
    inner = make_index(kind, relation, column, unique=unique, fpp=fpp,
                       **build_extra)

    snap = manifest.get("snapshot")
    wal_info = manifest.get("wal")
    if not isinstance(snap, dict) or not isinstance(wal_info, dict):
        raise CorruptManifestError(
            f"manifest in {d} lacks snapshot/wal records"
        )
    snapshot_path = d / str(snap["file"])
    try:
        found_crc = file_crc32(snapshot_path)
    except FileNotFoundError:
        raise CorruptSnapshotError(
            f"snapshot file missing: {snapshot_path}"
        ) from None
    if found_crc != int(snap["crc32"]):
        raise CorruptSnapshotError(
            f"snapshot {snapshot_path.name} checksum {found_crc:#010x} "
            f"disagrees with manifest {int(snap['crc32']):#010x}"
        )
    if snapshot_path.stat().st_size != int(snap["bytes"]):
        raise CorruptSnapshotError(
            f"snapshot {snapshot_path.name} is "
            f"{snapshot_path.stat().st_size} bytes, manifest records "
            f"{int(snap['bytes'])}"
        )
    inner.restore_state(read_snapshot(snapshot_path))

    wal_path = d / str(wal_info["file"])
    records, valid_bytes = replay_wal(wal_path)
    truncate_wal(wal_path, valid_bytes)
    replayed_ops = 0
    for record in records:
        try:
            apply_record(inner, record)
        except (LookupError, ValueError):
            continue
        replayed_ops += _record_op_count(record)

    index = DurableIndex(
        inner,
        d,
        sync_every=(int(manifest.get("sync_every", 1))
                    if sync_every is None else sync_every),
        checkpoint_every=(manifest.get("checkpoint_every")
                          if checkpoint_every is None else checkpoint_every),
        kind=kind,
        column=column,
        unique=unique,
        fpp=None if fpp is None else float(fpp),
        config=config,
        seed=seed,
        _recovered_generation=int(wal_info["generation"]),
    )
    index._ops_total = int(manifest.get("ops_at_checkpoint", 0)) + replayed_ops
    # The replayed tail still counts toward the next auto-checkpoint —
    # otherwise repeated crash/recover cycles would let the WAL grow
    # well past the checkpoint_every bound.
    index._ops_since_checkpoint = replayed_ops
    if (index.checkpoint_every is not None
            and replayed_ops >= index.checkpoint_every):
        index.checkpoint()
    return index
