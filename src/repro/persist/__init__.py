"""Durability subsystem: write-ahead log, checkpoints, crash recovery.

Layers, bottom-up:

* :mod:`repro.persist.wal` — length+CRC32-framed mutation log with
  batched fsync and torn-tail-tolerant replay;
* :mod:`repro.persist.snapshot` — checksummed container for any
  backend's ``snapshot_state()`` dict (NumPy filter words and counter
  bytes stored as raw blobs);
* :mod:`repro.persist.manifest` — atomically-replaced JSON commit
  point tying a snapshot and a WAL generation together;
* :mod:`repro.persist.durable` — :class:`DurableIndex`, the
  protocol-conforming wrapper that logs before applying and
  checkpoints on demand or every N ops, plus :func:`recover`;
* :mod:`repro.persist.service` — per-shard durability for the
  sharded serving layer (:func:`make_durable_service` /
  :func:`recover_service`).

This package is the *only* place in ``src/`` allowed to open files in
binary-write mode or define on-disk formats — reprolint's
format-discipline rule enforces that boundary.
"""

from repro.persist.durable import (
    DurableIndex,
    decode_config,
    encode_config,
    recover,
    snapshot_name,
)
from repro.persist.errors import (
    CorruptManifestError,
    CorruptSnapshotError,
    PersistError,
)
from repro.persist.manifest import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    atomic_write_json,
    read_manifest,
    write_manifest,
)
from repro.persist.service import (
    SERVICE_MANIFEST,
    SERVICE_VERSION,
    make_durable_service,
    merge_durable_shards,
    recover_service,
    split_durable_shard,
    write_service_manifest,
)
from repro.persist.snapshot import (
    file_crc32,
    read_snapshot,
    write_snapshot,
)
from repro.persist.wal import (
    WriteAheadLog,
    apply_record,
    replay_wal,
    truncate_wal,
)

__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "SERVICE_MANIFEST",
    "SERVICE_VERSION",
    "CorruptManifestError",
    "CorruptSnapshotError",
    "DurableIndex",
    "PersistError",
    "WriteAheadLog",
    "apply_record",
    "atomic_write_json",
    "decode_config",
    "encode_config",
    "file_crc32",
    "make_durable_service",
    "merge_durable_shards",
    "read_manifest",
    "read_snapshot",
    "recover",
    "recover_service",
    "replay_wal",
    "snapshot_name",
    "split_durable_shard",
    "truncate_wal",
    "write_manifest",
    "write_service_manifest",
    "write_snapshot",
]
