"""Checksummed snapshot container for backend structural state.

File layout::

    b"RPSNAP01" | u32 header_len | u32 crc32(header) | header JSON | blobs

The header holds the backend's ``snapshot_state()`` dict with every
binary value (NumPy arrays — Bloom filter words — and byte strings —
counting-filter counters) swapped for an index into the trailing blob
region: ``{"__ndarray__": i, "dtype": ..., "shape": [...]}`` or
``{"__bytes__": i}``.  ``blob_lens`` in the header slices the region
back apart and ``blob_crc`` checksums it, so corruption anywhere in the
file — header or bits — surfaces as :class:`CorruptSnapshotError` with
a precise diagnostic instead of a silently wrong tree.

Writes are atomic: temp file, flush, fsync, ``os.replace``, directory
fsync — a crash mid-checkpoint leaves the previous snapshot intact.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Any

import numpy as np

from repro.persist.errors import CorruptSnapshotError

MAGIC = b"RPSNAP01"
_HEAD = struct.Struct("<II")  # (header length, CRC32 of header)

_MARKERS = ("__ndarray__", "__bytes__")


def _encode(value: Any, blobs: list[bytes]) -> Any:
    """JSON-safe copy of ``value`` with binary payloads moved to blobs."""
    if isinstance(value, (np.integer, np.bool_)):
        return value.item()
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        ref = {"__ndarray__": len(blobs), "dtype": str(value.dtype),
               "shape": list(value.shape)}
        blobs.append(np.ascontiguousarray(value).tobytes())
        return ref
    if isinstance(value, (bytes, bytearray)):
        blobs.append(bytes(value))
        return {"__bytes__": len(blobs) - 1}
    if isinstance(value, dict):
        out: dict[str, Any] = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"snapshot dict keys must be str, got {type(key).__name__}"
                )
            if key in _MARKERS:
                raise TypeError(f"snapshot dict key {key!r} is reserved")
            out[key] = _encode(item, blobs)
        return out
    if isinstance(value, (list, tuple)):
        return [_encode(item, blobs) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"snapshot state contains unserializable {type(value).__name__}"
    )


def _decode(value: Any, blobs: list[bytes]) -> Any:
    if isinstance(value, dict):
        if "__ndarray__" in value:
            raw = blobs[int(value["__ndarray__"])]
            arr = np.frombuffer(raw, dtype=np.dtype(value["dtype"]))
            return arr.reshape([int(d) for d in value["shape"]]).copy()
        if "__bytes__" in value:
            return blobs[int(value["__bytes__"])]
        return {key: _decode(item, blobs) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode(item, blobs) for item in value]
    return value


def write_snapshot(path: str | Path, state: dict[str, Any]) -> tuple[int, int]:
    """Atomically write ``state``; return ``(file_bytes, file_crc32)``."""
    target = Path(path)
    blobs: list[bytes] = []
    encoded = _encode(state, blobs)
    blob_region = b"".join(blobs)
    header = {
        "state": encoded,
        "blob_lens": [len(b) for b in blobs],
        "blob_crc": zlib.crc32(blob_region),
    }
    hjson = json.dumps(header, separators=(",", ":"),
                       sort_keys=True).encode("utf-8")
    body = MAGIC + _HEAD.pack(len(hjson), zlib.crc32(hjson)) + hjson
    body += blob_region
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "wb") as f:
        f.write(body)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, target)
    _fsync_dir(target.parent)
    return len(body), zlib.crc32(body)


def read_snapshot(path: str | Path) -> dict[str, Any]:
    """Read and fully verify a snapshot; raise on any corruption."""
    p = Path(path)
    try:
        data = p.read_bytes()
    except FileNotFoundError:
        raise CorruptSnapshotError(f"snapshot file missing: {p}") from None
    if len(data) < len(MAGIC) + _HEAD.size:
        raise CorruptSnapshotError(
            f"snapshot {p.name} is {len(data)} bytes: too short for the "
            f"{len(MAGIC) + _HEAD.size}-byte container header"
        )
    if data[: len(MAGIC)] != MAGIC:
        raise CorruptSnapshotError(
            f"snapshot {p.name} has bad magic {data[:len(MAGIC)]!r} "
            f"(expected {MAGIC!r})"
        )
    hlen, hcrc = _HEAD.unpack_from(data, len(MAGIC))
    hstart = len(MAGIC) + _HEAD.size
    hend = hstart + hlen
    if hend > len(data):
        raise CorruptSnapshotError(
            f"snapshot {p.name} header truncated: declares {hlen} bytes, "
            f"file holds {len(data) - hstart}"
        )
    hbytes = data[hstart:hend]
    found = zlib.crc32(hbytes)
    if found != hcrc:
        raise CorruptSnapshotError(
            f"snapshot {p.name} header checksum mismatch: expected "
            f"{hcrc:#010x}, found {found:#010x}"
        )
    header = json.loads(hbytes.decode("utf-8"))
    blob_region = data[hend:]
    lens = [int(n) for n in header["blob_lens"]]
    if sum(lens) != len(blob_region):
        raise CorruptSnapshotError(
            f"snapshot {p.name} blob region is {len(blob_region)} bytes, "
            f"header declares {sum(lens)}"
        )
    blob_crc = zlib.crc32(blob_region)
    if blob_crc != int(header["blob_crc"]):
        raise CorruptSnapshotError(
            f"snapshot {p.name} blob checksum mismatch: expected "
            f"{int(header['blob_crc']):#010x}, found {blob_crc:#010x}"
        )
    blobs: list[bytes] = []
    offset = 0
    for n in lens:
        blobs.append(blob_region[offset:offset + n])
        offset += n
    state = _decode(header["state"], blobs)
    if not isinstance(state, dict):
        raise CorruptSnapshotError(
            f"snapshot {p.name} state is {type(state).__name__}, not a dict"
        )
    return state


def file_crc32(path: str | Path) -> int:
    """CRC32 of a whole file (for manifest cross-checks)."""
    return zlib.crc32(Path(path).read_bytes())


def _fsync_dir(directory: Path) -> None:
    """Best-effort directory fsync so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)
