"""Durable sharded serving: per-shard WAL + checkpoint directories.

:func:`make_durable_service` builds a :class:`ShardedIndex` through the
usual registry path, then wraps every shard's index in a
:class:`DurableIndex` rooted at ``<dir>/shard-<id>/`` — each shard owns
its *own* WAL and snapshot, exactly as the partitions of a distributed
index own their logs.  A top-level ``SERVICE.json`` (written with the
same temp/fsync/rename atomicity as shard manifests) records the shard
layout: kind, column, uniqueness, topology epoch, and one
``{id, lo_key, hi_key}`` record per shard in key-range order.

Shard directories are keyed by **stable shard id**, not by routing
ordinal, so live topology changes never rename a directory that is
still in service.  :func:`split_durable_shard` and
:func:`merge_durable_shards` reshape a durable service on disk with the
same commit discipline the shard manifests use:

1. drain Router buffers *through the wrapper* (buffered writes land in
   the parent's WAL — still recoverable if we crash right here);
2. unwrap the parent ``DurableIndex`` and run the in-memory topology
   op (``split_shard``/``merge_shards``);
3. checkpoint each child into its fresh ``shard-<id>`` directory;
4. atomically rewrite ``SERVICE.json`` — **the commit point**: before
   the rename, recovery sees the pre-split layout backed by the intact
   parent directory; after it, the post-split layout backed by the
   children;
5. remove the now-unreferenced parent directory.

:func:`recover_service` reverses it all — read the service manifest,
:func:`~repro.persist.durable.recover` every listed shard directory,
and reassemble the :class:`ShardedIndex` with the recorded fences, ids
and epoch, so the Router serves the exact tree the crashed process had
acknowledged.  Version-1 manifests (pre-elasticity, ordinal-keyed) are
still accepted: ids are synthesized as ``0..n-1`` at epoch 0, matching
the directories version 1 wrote.

Under the process executor (:mod:`repro.service.executor`), each
shard's WAL appends happen inside the forked worker that owns the
shard — the per-shard directory layout means no two processes ever
append to the same log file.  The parent fsyncs every shard before
forking, a worker fsyncs its shard's log before acknowledging each
batch, and executor sync points (topology changes, drains, close)
serialize the handoff back to the parent, so the on-disk WAL is
always single-writer and an acked op is always durable no matter
which process appended it.
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import Any

from repro.api.results import as_scalar
from repro.persist.durable import DurableIndex, decode_config, recover
from repro.persist.errors import CorruptManifestError
from repro.persist.manifest import atomic_write_json, read_manifest
from repro.service.sharded import Shard, ShardedIndex
from repro.storage.relation import Relation

SERVICE_MANIFEST = "SERVICE.json"
SERVICE_VERSION = 2


def _shard_dir(root: Path, shard_id: int) -> Path:
    return root / f"shard-{shard_id:03d}"


def write_service_manifest(root: Path, service: ShardedIndex) -> None:
    """Atomically (re)write ``SERVICE.json`` from the live topology."""
    atomic_write_json(root / SERVICE_MANIFEST, {
        "version": SERVICE_VERSION,
        "kind": service.kind,
        "column": service.key_column,
        "unique": service.unique,
        "epoch": service.topology_epoch,
        "n_shards": service.n_shards,
        "donor_height": service.donor_height,
        "shards": [
            {
                "id": s.shard_id,
                "lo_key": as_scalar(s.lo_key),
                "hi_key": as_scalar(s.hi_key),
            }
            for s in service.shards
        ],
    })


def make_durable_service(
    relation: Relation,
    key_column: str,
    directory: str | Path,
    *,
    n_shards: int = 4,
    kind: str = "bf",
    unique: bool = False,
    config: Any = None,
    sync_every: int = 1,
    checkpoint_every: int | None = None,
    **cfg: Any,
) -> ShardedIndex:
    """Build a sharded service whose every shard is durable.

    Each shard's index is wrapped in a :class:`DurableIndex` with its
    own directory under ``directory`` (initial checkpoint included, so
    the freshly built service is immediately recoverable), and the
    service manifest committing the shard layout is written last.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    service = ShardedIndex.build(relation, key_column, n_shards=n_shards,
                                 kind=kind, config=config, unique=unique,
                                 **cfg)
    fpp = cfg.get("fpp")
    for shard in service.shards:
        shard.index = DurableIndex(
            shard.index,
            _shard_dir(root, shard.shard_id),
            sync_every=sync_every,
            checkpoint_every=checkpoint_every,
            kind=kind,
            column=key_column,
            unique=unique,
            fpp=None if fpp is None else float(fpp),
            config=config,
        )
    write_service_manifest(root, service)
    return service


def _manifest_layout(
    root: Path, manifest: dict[str, Any]
) -> tuple[int, list[dict[str, Any]]]:
    """Normalize a v1 or v2 service manifest to ``(epoch, shard specs)``.

    Version 1 predates dynamic topology: directories were keyed by
    routing ordinal and the manifest carried parallel fence lists, which
    is exactly the layout stable ids ``0..n-1`` at epoch 0 describe.
    """
    version = manifest.get("version")
    if version == 1:
        n_shards = int(manifest["n_shards"])
        lo_keys = list(manifest["lo_keys"])
        hi_keys = list(manifest["hi_keys"])
        if len(lo_keys) != n_shards or len(hi_keys) != n_shards:
            raise CorruptManifestError(
                f"service manifest fence lists disagree with n_shards="
                f"{n_shards}"
            )
        return 0, [
            {"id": i, "lo_key": lo_keys[i], "hi_key": hi_keys[i]}
            for i in range(n_shards)
        ]
    if version != SERVICE_VERSION:
        raise CorruptManifestError(
            f"service manifest has version {version!r}, expected "
            f"{SERVICE_VERSION} (or legacy 1)"
        )
    specs = manifest.get("shards")
    if not isinstance(specs, list) or not specs:
        raise CorruptManifestError(
            f"service manifest in {root} lacks a shards list"
        )
    if len(specs) != int(manifest["n_shards"]):
        raise CorruptManifestError(
            f"service manifest shards list disagrees with n_shards="
            f"{manifest['n_shards']}"
        )
    for spec in specs:
        if not isinstance(spec, dict) or "id" not in spec:
            raise CorruptManifestError(
                f"malformed shard record in service manifest: {spec!r}"
            )
    return int(manifest.get("epoch", 0)), specs


def recover_service(
    directory: str | Path,
    relation: Relation,
    *,
    sync_every: int | None = None,
    checkpoint_every: int | None = None,
) -> ShardedIndex:
    """Rebuild a durable sharded service from its directory tree.

    Each ``shard-<id>`` directory recovers independently (snapshot +
    WAL-tail replay); the routing fences, stable ids and topology epoch
    come from the service manifest, so routing after recovery is
    identical to routing before the crash — including any splits or
    merges committed before it.
    """
    root = Path(directory)
    manifest = read_manifest(root / SERVICE_MANIFEST,
                             versions=(1, SERVICE_VERSION))
    epoch, specs = _manifest_layout(root, manifest)
    shards: list[Shard] = []
    for spec in specs:
        sid = int(spec["id"])
        index = recover(_shard_dir(root, sid), relation,
                        sync_every=sync_every,
                        checkpoint_every=checkpoint_every)
        shards.append(Shard(index=index, lo_key=spec["lo_key"],
                            hi_key=spec["hi_key"], shard_id=sid))
    return ShardedIndex(
        relation,
        str(manifest["column"]),
        shards,
        str(manifest["kind"]),
        bool(manifest["unique"]),
        int(manifest["donor_height"]),
        epoch=epoch,
    )


def _unwrap(service: ShardedIndex, shard_id: int) -> DurableIndex:
    """Drain buffers through the wrapper, then expose the inner index.

    The drained writes are WAL-logged by the parent before anything
    moves, so a crash at any point before the manifest rewrite still
    recovers every acknowledged op from the parent's directory.
    """
    shard = service.shard_by_id(shard_id)
    if shard is None:
        raise KeyError(f"shard id {shard_id} is not in the service")
    durable = shard.index
    if not isinstance(durable, DurableIndex):
        raise TypeError(
            f"shard {shard_id} is not durable "
            f"({type(durable).__name__}); use ShardedIndex.split_shard/"
            "merge_shards directly for in-memory services"
        )
    service.drain(shard_id)
    shard.index = durable.inner
    return durable


def _rewrap(
    service: ShardedIndex,
    root: Path,
    shard_id: int,
    template: DurableIndex,
) -> None:
    """Wrap a fresh child shard in its own :class:`DurableIndex`.

    Build inputs (fpp, config, seed) are taken from the parent's shard
    manifest — the same records :func:`recover` trusts — so the child's
    manifest can rebuild the same backend.  The wrapper's initial
    checkpoint makes the child recoverable before the service manifest
    ever references it.
    """
    shard = service.shard_by_id(shard_id)
    assert shard is not None
    parent_manifest = read_manifest(template.manifest_path)
    fpp = parent_manifest.get("fpp")
    seed = parent_manifest.get("seed")
    shard.index = DurableIndex(
        shard.index,
        _shard_dir(root, shard_id),
        sync_every=template.sync_every,
        checkpoint_every=template.checkpoint_every,
        kind=service.kind,
        column=service.key_column,
        unique=service.unique,
        fpp=None if fpp is None else float(fpp),
        config=decode_config(parent_manifest.get("config")),
        seed=None if seed is None else int(seed),
    )


def split_durable_shard(
    service: ShardedIndex,
    directory: str | Path,
    shard_id: int,
    *,
    at: Any = None,
) -> tuple[int, int]:
    """Split one shard of a durable service, committing the new layout.

    Returns the two fresh child shard ids.  Crash-consistent at every
    step: the parent directory is only removed after the rewritten
    ``SERVICE.json`` (the commit point) stops referencing it, and the
    children are checkpointed before that rewrite, so recovery always
    finds a complete layout — pre-split before the rename, post-split
    after it.
    """
    root = Path(directory)
    durable = _unwrap(service, shard_id)
    try:
        left_id, right_id = service.split_shard(shard_id, at=at)
    except BaseException:
        shard = service.shard_by_id(shard_id)
        if shard is not None:          # failed pre-split: restore wrapper
            shard.index = durable
        raise
    durable.close()
    _rewrap(service, root, left_id, durable)
    _rewrap(service, root, right_id, durable)
    write_service_manifest(root, service)
    shutil.rmtree(_shard_dir(root, shard_id), ignore_errors=True)
    return left_id, right_id


def merge_durable_shards(
    service: ShardedIndex,
    directory: str | Path,
    sid_a: int,
    sid_b: int,
) -> int:
    """Merge two adjacent shards of a durable service on disk.

    Returns the fresh merged shard id.  Same commit discipline as
    :func:`split_durable_shard`: both parents' directories outlive the
    manifest rewrite that stops referencing them.
    """
    root = Path(directory)
    durable_a = _unwrap(service, sid_a)
    try:
        durable_b = _unwrap(service, sid_b)
    except BaseException:
        shard_a = service.shard_by_id(sid_a)
        if shard_a is not None:
            shard_a.index = durable_a
        raise
    try:
        merged_id = service.merge_shards(sid_a, sid_b)
    except BaseException:
        for sid, durable in ((sid_a, durable_a), (sid_b, durable_b)):
            shard = service.shard_by_id(sid)
            if shard is not None:      # failed pre-merge: restore wrapper
                shard.index = durable
        raise
    durable_a.close()
    durable_b.close()
    _rewrap(service, root, merged_id, durable_a)
    write_service_manifest(root, service)
    shutil.rmtree(_shard_dir(root, sid_a), ignore_errors=True)
    shutil.rmtree(_shard_dir(root, sid_b), ignore_errors=True)
    return merged_id
