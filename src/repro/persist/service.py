"""Durable sharded serving: per-shard WAL + checkpoint directories.

:func:`make_durable_service` builds a :class:`ShardedIndex` through the
usual registry path, then wraps every shard's index in a
:class:`DurableIndex` rooted at ``<dir>/shard-<i>/`` — each shard owns
its *own* WAL and snapshot, exactly as the partitions of a distributed
index own their logs.  A top-level ``SERVICE.json`` (written with the
same temp/fsync/rename atomicity as shard manifests) records the shard
layout: kind, column, uniqueness, routing fences, donor height.

:func:`recover_service` reverses it — read the service manifest,
:func:`~repro.persist.durable.recover` every shard directory, and
reassemble the :class:`ShardedIndex` with the recorded fences, so the
Router serves the exact tree the crashed process had acknowledged.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.api.results import as_scalar
from repro.persist.durable import DurableIndex, recover
from repro.persist.errors import CorruptManifestError
from repro.persist.manifest import atomic_write_json, read_manifest
from repro.service.sharded import Shard, ShardedIndex
from repro.storage.relation import Relation

SERVICE_MANIFEST = "SERVICE.json"
SERVICE_VERSION = 1


def _shard_dir(root: Path, i: int) -> Path:
    return root / f"shard-{i:03d}"


def make_durable_service(
    relation: Relation,
    key_column: str,
    directory: str | Path,
    *,
    n_shards: int = 4,
    kind: str = "bf",
    unique: bool = False,
    config: Any = None,
    sync_every: int = 1,
    checkpoint_every: int | None = None,
    **cfg: Any,
) -> ShardedIndex:
    """Build a sharded service whose every shard is durable.

    Each shard's index is wrapped in a :class:`DurableIndex` with its
    own directory under ``directory`` (initial checkpoint included, so
    the freshly built service is immediately recoverable), and the
    service manifest committing the shard layout is written last.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    service = ShardedIndex.build(relation, key_column, n_shards=n_shards,
                                 kind=kind, config=config, unique=unique,
                                 **cfg)
    fpp = cfg.get("fpp")
    for i, shard in enumerate(service.shards):
        shard.index = DurableIndex(
            shard.index,
            _shard_dir(root, i),
            sync_every=sync_every,
            checkpoint_every=checkpoint_every,
            kind=kind,
            column=key_column,
            unique=unique,
            fpp=None if fpp is None else float(fpp),
            config=config,
        )
    atomic_write_json(root / SERVICE_MANIFEST, {
        "version": SERVICE_VERSION,
        "kind": kind,
        "column": key_column,
        "unique": unique,
        "n_shards": service.n_shards,
        "lo_keys": [as_scalar(s.lo_key) for s in service.shards],
        "hi_keys": [as_scalar(s.hi_key) for s in service.shards],
        "donor_height": service.donor_height,
    })
    return service


def recover_service(
    directory: str | Path,
    relation: Relation,
    *,
    sync_every: int | None = None,
    checkpoint_every: int | None = None,
) -> ShardedIndex:
    """Rebuild a durable sharded service from its directory tree.

    Each ``shard-<i>`` directory recovers independently (snapshot +
    WAL-tail replay); the routing fences come from the service manifest,
    so routing after recovery is identical to routing before the crash.
    """
    root = Path(directory)
    manifest = read_manifest(root / SERVICE_MANIFEST)
    if manifest.get("version") != SERVICE_VERSION:
        raise CorruptManifestError(
            f"service manifest has version {manifest.get('version')!r}, "
            f"expected {SERVICE_VERSION}"
        )
    n_shards = int(manifest["n_shards"])
    lo_keys = list(manifest["lo_keys"])
    hi_keys = list(manifest["hi_keys"])
    if len(lo_keys) != n_shards or len(hi_keys) != n_shards:
        raise CorruptManifestError(
            f"service manifest fence lists disagree with n_shards="
            f"{n_shards}"
        )
    shards: list[Shard] = []
    for i in range(n_shards):
        index = recover(_shard_dir(root, i), relation,
                        sync_every=sync_every,
                        checkpoint_every=checkpoint_every)
        shards.append(Shard(index=index, lo_key=lo_keys[i],
                            hi_key=hi_keys[i]))
    return ShardedIndex(
        relation,
        str(manifest["column"]),
        shards,
        str(manifest["kind"]),
        bool(manifest["unique"]),
        int(manifest["donor_height"]),
    )
