"""Exception types of the durability subsystem."""

from __future__ import annotations


class PersistError(Exception):
    """Base error for checkpoint / WAL / manifest handling."""


class CorruptSnapshotError(PersistError):
    """A snapshot file failed its magic / checksum / shape validation."""


class CorruptManifestError(PersistError):
    """A manifest file is missing, unparsable, or incomplete."""
