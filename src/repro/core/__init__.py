"""Core contribution: Bloom filters, BF-leaves, and the BF-Tree index."""

from repro.core.bf_leaf import BFLeaf, BFLeafGeometry, LeafOverflow
from repro.core.bf_tree import (
    BFTree,
    BFTreeConfig,
    DeleteOutcome,
    RangeScanResult,
    SearchResult,
)
from repro.core.bloom import (
    DEFAULT_HASH_COUNT,
    BloomFilter,
    bits_for_capacity,
    capacity_for_bits,
    expected_fpp,
    fpp_after_deletes,
    fpp_after_inserts,
    optimal_hash_count,
)
from repro.core.hashing import bloom_positions, hash_pair, key_to_int, splitmix64
from repro.core.variants import CountingBloomFilter, ScalableBloomFilter

__all__ = [
    "BFLeaf",
    "BFLeafGeometry",
    "LeafOverflow",
    "BFTree",
    "BFTreeConfig",
    "DeleteOutcome",
    "RangeScanResult",
    "SearchResult",
    "DEFAULT_HASH_COUNT",
    "BloomFilter",
    "bits_for_capacity",
    "capacity_for_bits",
    "expected_fpp",
    "fpp_after_deletes",
    "fpp_after_inserts",
    "optimal_hash_count",
    "bloom_positions",
    "hash_pair",
    "key_to_int",
    "splitmix64",
    "CountingBloomFilter",
    "ScalableBloomFilter",
]
