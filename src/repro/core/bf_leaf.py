"""BF-leaf: the Bloom-filter leaf node of a BF-Tree (paper §4.1).

A BF-leaf corresponds to a contiguous *page range* of the data file and a
*key range*, and holds ``S`` Bloom filters.  Filter ``i`` answers "does key
``k`` appear in page group ``i``" for consecutive groups of
``pages_per_bf`` data pages starting at ``min_pid``.  The leaf also keeps
the number of indexed keys (to police the false-positive guarantee), the
key range, and a next-leaf pointer for range scans.

Sizing follows the split property of the paper's §3: the leaf has a fixed
bit budget (one index page minus a header), carved into equal filters of
``bits_per_bf`` bits.  As long as the ratio of total bits to total indexed
keys stays at ``-ln(fpp) / ln^2(2)`` the leaf-wide false-positive
probability is the configured ``fpp`` regardless of how many filters the
budget is split into.

Update support (paper §7): the leaf keeps a *deleted-key list* so deletes
do not degrade the fpp, and tracks ``extra_inserts`` beyond nominal
capacity so the effective fpp after overflowing inserts follows
Equation 14.

Probing comes in two forms: the scalar Algorithm-1 path
(:meth:`BFLeaf.matching_groups` / :meth:`BFLeaf.matching_page_runs`) and
a vectorized batch path (:meth:`BFLeaf.matching_groups_many` /
:meth:`BFLeaf.matching_page_runs_many`) that tests all S filters for N
probe keys in one NumPy pass — the leaf-level engine behind
``BFTree.search_many``.  Both paths return identical results.

Writes mirror that split: scalar :meth:`BFLeaf.add`, and the prehashed
primitives :meth:`BFLeaf.hash_batch` + :meth:`BFLeaf.add_prehashed`
that ``BFTree.insert_many`` drives (hash a key batch once against the
leaf's shared filter geometry, then apply per key), bundled for
single-leaf use as :meth:`BFLeaf.add_many`.  Scalar and prehashed
paths leave bit-identical state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bloom import (
    BloomFilter,
    bits_for_capacity,
    fpp_after_inserts,
    optimal_hash_count,
)
from repro.core.hashing import (
    bloom_positions,
    bloom_positions_batch,
    key_to_int,
    keys_to_int_array,
)

LEAF_HEADER_BYTES = 48
"""min_key, max_key, min_pid, S, #keys, next pointer, geometry fields."""

DUPLICATE_TRUST_MAX_FPP = 0.5
"""Ceiling on a group filter's effective false-positive rate above which
its membership test is no longer trusted to classify an insert as a
re-insert.  Without the ceiling a saturated filter (every probe answers
"present") would swallow all novel keys as duplicates, freezing nkeys
and permanently preventing the capacity split that would rebuild it;
past the ceiling every insert counts as new, which errs toward exactly
that split."""


@dataclass
class BFLeafGeometry:
    """Static sizing shared by all leaves of one BF-Tree.

    ``filter_kind`` selects the membership structure: ``"plain"`` (the
    paper's Bloom filters + deleted-key list) or ``"counting"`` (§7's
    delete-supporting variant, 4-bit counters, 4x the space per filter —
    the page budget then fits a quarter as many filters).
    """

    fpp: float
    bits_per_bf: int
    pages_per_bf: int
    max_filters: int          # S_max: filters fitting the page budget
    hash_count: int
    page_size: int
    filter_kind: str = "plain"
    counter_bits: int = 4

    @property
    def max_pages(self) -> int:
        """Data pages one leaf can cover."""
        return self.max_filters * self.pages_per_bf

    @property
    def key_capacity(self) -> int:
        """Distinct keys one leaf indexes at the nominal fpp (Eq. 5)."""
        bits_per_key = bits_for_capacity(1, self.fpp)
        return max(1, int(self.max_filters * self.bits_per_bf / bits_per_key))

    @classmethod
    def plan(
        cls,
        fpp: float,
        expected_keys_per_group: float,
        pages_per_bf: int = 1,
        hash_count: int | None = None,
        page_size: int = 4096,
        filter_kind: str = "plain",
        counter_bits: int = 4,
    ) -> "BFLeafGeometry":
        """Carve one index page into per-group filters for the target fpp.

        ``expected_keys_per_group`` is the anticipated number of distinct
        keys falling into one group of ``pages_per_bf`` data pages; for a
        clustered attribute it is ``pages_per_bf * tuples_per_page /
        avg_cardinality`` (at least 1).

        ``hash_count=None`` picks the optimal k for the resulting
        bits-per-key ratio, which makes the realized false-positive rate
        track the nominal ``fpp`` Equation 1 promises.  The paper's
        prototype fixes k=3 ("typically enough to have hashing close to
        ideal"); pass ``hash_count=3`` to mirror that — at very small fpp
        the realized rate then saturates around 1e-4.
        """
        if pages_per_bf < 1:
            raise ValueError("pages_per_bf must be >= 1")
        if filter_kind not in ("plain", "counting"):
            raise ValueError(
                f"filter_kind must be 'plain' or 'counting', got {filter_kind!r}"
            )
        budget_bits = (page_size - LEAF_HEADER_BYTES) * 8
        per_group = max(1.0, expected_keys_per_group)
        bits_per_bf = max(4, round(bits_for_capacity(per_group, fpp)))
        slot_bits = bits_per_bf * (counter_bits if filter_kind == "counting" else 1)
        max_filters = max(1, budget_bits // slot_bits)
        if hash_count is None:
            hash_count = min(32, optimal_hash_count(bits_per_bf, per_group))
        return cls(
            fpp=fpp,
            bits_per_bf=bits_per_bf,
            pages_per_bf=pages_per_bf,
            max_filters=max_filters,
            hash_count=hash_count,
            page_size=page_size,
            filter_kind=filter_kind,
            counter_bits=counter_bits,
        )


@dataclass
class BFLeaf:
    """One Bloom-filter leaf (see module docstring)."""

    node_id: int
    geometry: BFLeafGeometry
    min_pid: int
    min_key: object = None
    max_key: object = None
    nkeys: int = 0                      # indexed (key, group) insertions
    next_leaf_id: int | None = None
    prev_leaf_id: int | None = None
    filters: list[BloomFilter] = field(default_factory=list)
    pages_covered: int = 0              # may be < len(filters) * pages_per_bf
    deleted_keys: set = field(default_factory=set)
    extra_inserts: int = 0              # inserts beyond nominal capacity
    #: Pages *before* ``min_pid`` that also contain ``min_key``.  When a
    #: key's duplicates straddle a leaf boundary, Algorithm 2 lets sibling
    #: page ranges overlap; we record the overlap here so a probe for
    #: ``min_key`` also fetches the preceding pages.
    spill_back_pages: int = 0
    #: Hash seed shared by every filter of this leaf.  ``None`` (the
    #: bulk-load default) means "use the node id at filter creation";
    #: it is pinned explicitly when the leaf changes owner (sharding
    #: reallocates node ids) or is created by a split (which derives a
    #: *structural* seed from the covered pages), so that filter bit
    #: patterns — and therefore false positives — do not depend on the
    #: allocation order of whichever tree happens to hold the leaf.
    #: All filters of one leaf must share one seed: the vectorized
    #: probe path hashes each key batch once per leaf.
    filter_seed: int | None = None

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def max_pid(self) -> int:
        """Last data page covered (inclusive)."""
        return self.min_pid + max(self.pages_covered, 1) - 1

    @property
    def nfilters(self) -> int:
        return len(self.filters)

    @property
    def key_capacity(self) -> int:
        return self.geometry.key_capacity

    @property
    def is_full(self) -> bool:
        """Leaf cannot take another page group within its page budget."""
        return self.nfilters >= self.geometry.max_filters

    def covers_key(self, key) -> bool:
        if self.min_key is None:
            return False
        return self.min_key <= key <= self.max_key

    def covers_pid(self, pid: int) -> bool:
        return self.min_pid <= pid < self.min_pid + self.pages_covered

    def group_of(self, pid: int) -> int:
        """Filter index covering data page ``pid``."""
        if pid < self.min_pid:
            raise ValueError(f"page {pid} below leaf range start {self.min_pid}")
        return (pid - self.min_pid) // self.geometry.pages_per_bf

    def group_page_range(self, group: int) -> tuple[int, int]:
        """(first_pid, npages) of filter ``group``, clipped to coverage."""
        g = self.geometry.pages_per_bf
        first = self.min_pid + group * g
        npages = min(g, self.min_pid + self.pages_covered - first)
        return first, max(npages, 0)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def filter_hash_seed(self) -> int:
        """The hash seed every filter of this leaf uses (see filter_seed)."""
        if self.filters:
            return self.filters[0].seed
        return self.node_id if self.filter_seed is None else self.filter_seed

    def key_positions(self, key) -> list[int]:
        """The k filter bit positions ``key`` hashes to in this leaf."""
        geo = self.geometry
        return bloom_positions(
            key_to_int(key), geo.hash_count, geo.bits_per_bf,
            self.filter_hash_seed(),
        )

    def hash_batch(self, keys) -> np.ndarray:
        """``(len(keys), k)`` bit positions, hashed once for the batch.

        All filters of one leaf share nbits/k/seed, so these rows are
        valid against every filter — the write-path counterpart of the
        shared-hash probe path (:meth:`_match_matrix`).
        """
        geo = self.geometry
        return bloom_positions_batch(
            keys_to_int_array(keys), geo.hash_count, geo.bits_per_bf,
            self.filter_hash_seed(),
        )

    def add(self, key, pid: int) -> bool:
        """Index ``key`` as present on data page ``pid``.

        Grows the filter list to cover ``pid`` if needed; raises if the
        page budget cannot reach that far (caller must split first).

        Returns True when the insert grew ``nkeys``.  A re-insert of an
        already-present ``(key, page group)`` pair — detected through the
        group filter's own membership test, the only memory the leaf has —
        leaves ``nkeys`` unchanged: the filter bits don't change, so
        neither does the capacity the leaf has actually consumed.  (The
        test can false-positive at the filter's fpp, under-counting a
        genuinely new key; that error is the same order as the accuracy
        the leaf already promises.  Once a filter degrades past
        :data:`DUPLICATE_TRUST_MAX_FPP` the test is ignored and every
        insert counts as new, so a saturated filter can never freeze
        ``nkeys`` and suppress the split that would rebuild it.)
        """
        return self.add_prehashed(key, pid, self.key_positions(key))

    def duplicate_prehashed(self, pid: int, positions) -> bool:
        """Would adding a key with these positions on ``pid`` be a re-insert?

        True when the group filter covering ``pid`` already reports the
        key present (bit level) *and* the filter is still reliable
        enough to say so (its effective fpp is below
        :data:`DUPLICATE_TRUST_MAX_FPP`) — such an add cannot grow
        ``nkeys``.
        """
        group = self.group_of(pid)
        if group >= self.nfilters:
            return False
        filt = self.filters[group]
        return (filt.contains_positions(positions)
                and filt.effective_fpp() <= DUPLICATE_TRUST_MAX_FPP)

    def add_prehashed(self, key, pid: int, positions,
                      duplicate: bool | None = None) -> bool:
        """:meth:`add` with the key's bit positions already computed.

        ``duplicate`` short-circuits the membership re-test when the
        caller already knows the answer (the batch write path tests whole
        key groups vectorized; set bits are never cleared by adds, so a
        positive test stays valid for the rest of the batch).  Returns
        True when ``nkeys`` grew.
        """
        group = self.group_of(pid)
        if group >= self.geometry.max_filters:
            raise LeafOverflow(
                f"page {pid} needs filter {group} but leaf holds at most "
                f"{self.geometry.max_filters}"
            )
        while self.nfilters <= group:
            self.filters.append(self._new_filter())
        filt = self.filters[group]
        if duplicate is None:
            duplicate = (filt.contains_positions(positions)
                         and filt.effective_fpp()
                         <= DUPLICATE_TRUST_MAX_FPP)
        if duplicate and self.geometry.filter_kind != "counting":
            # All bits already set: the scatter would be a no-op.  Only
            # the add multiplicity is recorded (as filter.add would).
            filt.count += 1
        else:
            filt.add_positions(positions)
        self.pages_covered = max(self.pages_covered, pid - self.min_pid + 1)
        if not duplicate:
            self.nkeys += 1
            if self.nkeys > self.key_capacity:
                self.extra_inserts = self.nkeys - self.key_capacity
        if self.min_key is None or key < self.min_key:
            self.min_key = key
        if self.max_key is None or key > self.max_key:
            self.max_key = key
        self.deleted_keys.discard(key)
        return not duplicate

    def add_many(self, keys, pids) -> int:
        """Batch :meth:`add` of parallel ``keys``/``pids`` sequences.

        Bit-identical to the scalar add loop — same filter bits, same
        ``nkeys``/``extra_inserts``/key-range/tombstone bookkeeping, and
        (on overflow) the same partial state with the exception raised
        at the same key — with the whole batch hashed in one NumPy pass
        instead of k Python-level hash rounds per key.  Returns the
        number of adds that grew ``nkeys``.  (``BFTree.insert_many``
        drives :meth:`hash_batch`/:meth:`add_prehashed` directly, with
        its own cross-leaf planning on top; this is the single-leaf
        convenience bundle of the same primitives.)
        """
        keys = list(keys)
        if not keys:
            return 0
        positions = self.hash_batch(keys)
        grew = 0
        for j, (key, pid) in enumerate(zip(keys, pids)):
            grew += self.add_prehashed(key, pid, positions[j].tolist())
        return grew

    def add_page_keys(self, keys, pid: int) -> None:
        """Vectorized :meth:`add` of one page's distinct keys (bulk load).

        ``keys`` must be a sorted NumPy integer array of the distinct keys
        present on data page ``pid``.
        """
        if len(keys) == 0:
            return
        group = self.group_of(pid)
        if group >= self.geometry.max_filters:
            raise LeafOverflow(
                f"page {pid} needs filter {group} but leaf holds at most "
                f"{self.geometry.max_filters}"
            )
        while self.nfilters <= group:
            self.filters.append(self._new_filter())
        self.filters[group].bulk_add(keys)
        self.pages_covered = max(self.pages_covered, pid - self.min_pid + 1)
        self.nkeys += len(keys)
        if self.nkeys > self.key_capacity:
            # Same reconciliation rule as add_prehashed: overflow is
            # always nkeys - key_capacity, however the leaf got there.
            self.extra_inserts = self.nkeys - self.key_capacity
        if self.deleted_keys:
            # Re-inserted keys stop being tombstoned, same as :meth:`add`.
            self.deleted_keys.difference_update(keys.tolist())
        first, last = keys[0].item(), keys[-1].item()
        if self.min_key is None or first < self.min_key:
            self.min_key = first
        if self.max_key is None or last > self.max_key:
            self.max_key = last

    def _new_filter(self):
        """Instantiate one membership filter per the leaf's geometry."""
        seed = self.node_id if self.filter_seed is None else self.filter_seed
        if self.geometry.filter_kind == "counting":
            from repro.core.variants import CountingBloomFilter

            return CountingBloomFilter(
                nbits=self.geometry.bits_per_bf,
                k=self.geometry.hash_count,
                seed=seed,
                counter_bits=self.geometry.counter_bits,
            )
        return BloomFilter(
            nbits=self.geometry.bits_per_bf,
            k=self.geometry.hash_count,
            seed=seed,
        )

    def mark_deleted(self, key) -> None:
        """Record ``key`` in the deleted list (fpp-preserving delete, §7)."""
        self.deleted_keys.add(key)

    def remove_key(self, key, pid: int) -> bool:
        """In-place delete via counter decrement (counting filters only).

        The caller must supply the page the tuple lived on — decrementing
        a filter the key was never added to would corrupt other keys'
        counters.
        """
        if self.geometry.filter_kind != "counting":
            raise ValueError(
                "remove_key requires filter_kind='counting'; plain filters "
                "delete through the tombstone list (mark_deleted)"
            )
        return self.remove_key_prehashed(pid, self.key_positions(key))

    def remove_key_prehashed(self, pid: int, positions) -> bool:
        """:meth:`remove_key` with the key's positions already computed
        (the batch delete path hashes once per leaf)."""
        group = self.group_of(pid)
        if group >= self.nfilters:
            return False
        removed = self.filters[group].remove_positions(positions)
        if removed:
            self.nkeys = max(0, self.nkeys - 1)
        return removed

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------
    def matching_groups(self, key) -> list[int]:
        """Indexes of all filters whose membership test matches ``key``.

        Probes *every* filter, as Algorithm 1 dictates; the caller charges
        CPU per probe via its IOStats.
        """
        if key in self.deleted_keys:
            return []
        return [i for i, f in enumerate(self.filters) if f.might_contain(key)]

    def matching_page_runs(self, key) -> list[tuple[int, int]]:
        """(first_pid, npages) runs to fetch for ``key``, merged when adjacent."""
        if key in self.deleted_keys:
            return []
        return self._build_runs(key, self.matching_groups(key))

    # -- vectorized batch probing --------------------------------------
    def matching_groups_many(self, keys) -> list[list[int]]:
        """Vectorized :meth:`matching_groups` over a batch of probe keys.

        Entry ``j`` equals ``matching_groups(keys[j])`` exactly, but all
        S filters are tested for all N keys in one NumPy pass: the leaf's
        filters share geometry (nbits/k/seed), so the k bit positions per
        key are hashed once and gathered against every filter's bitset.
        """
        matrix = self._match_matrix(keys)
        return [
            [] if key in self.deleted_keys
            else np.nonzero(matrix[j])[0].tolist()
            for j, key in enumerate(keys)
        ]

    def matching_page_runs_many(self, keys) -> list[list[tuple[int, int]]]:
        """Vectorized :meth:`matching_page_runs` over a batch of probe keys.

        Entry ``j`` equals ``matching_page_runs(keys[j])`` exactly
        (spill-back handling, tombstones and adjacent-run merging
        included); only the filter membership tests are batched.
        """
        matrix = self._match_matrix(keys)
        out: list[list[tuple[int, int]]] = []
        for j, key in enumerate(keys):
            if key in self.deleted_keys:
                out.append([])
            else:
                out.append(
                    self._build_runs(key, np.nonzero(matrix[j])[0].tolist())
                )
        return out

    def _match_matrix(self, keys) -> np.ndarray:
        """Raw ``(len(keys), nfilters)`` boolean filter-match matrix.

        No tombstone handling — callers apply the deleted-key list.  All
        filters of one leaf share nbits/k/seed, so the batch is hashed
        once (``bloom_positions_batch``) and each filter only gathers its
        own bits.
        """
        n = len(keys)
        if n == 0 or not self.filters:
            return np.zeros((n, self.nfilters), dtype=bool)
        proto = self.filters[0]
        positions = bloom_positions_batch(
            keys_to_int_array(keys), proto.k, proto.nbits, proto.seed
        )
        if self.geometry.filter_kind != "counting":
            # All S filters share geometry, so every (key, filter) pair
            # is tested in one stacked gather instead of S Python calls.
            return BloomFilter.test_positions_stacked(
                self.filters, positions
            )
        matrix = np.empty((n, self.nfilters), dtype=bool)
        for i, bf in enumerate(self.filters):
            matrix[:, i] = bf.test_positions(positions)
        return matrix

    def _build_runs(self, key, groups) -> list[tuple[int, int]]:
        """Merge matched ``groups`` into fetchable (first_pid, npages) runs.

        ``key`` must not be tombstoned (callers check); it is only used
        for the spill-back test on the leaf's minimum key.
        """
        runs: list[tuple[int, int]] = []
        if (
            self.spill_back_pages
            and self.min_key is not None
            and key == self.min_key
        ):
            runs.append((self.min_pid - self.spill_back_pages,
                         self.spill_back_pages))
        for group in groups:
            first, npages = self.group_page_range(group)
            if npages <= 0:
                continue
            if runs and runs[-1][0] + runs[-1][1] == first:
                prev_first, prev_n = runs[-1]
                runs[-1] = (prev_first, prev_n + npages)
            else:
                runs.append((first, npages))
        return runs

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def bits_used(self) -> int:
        per_slot = self.geometry.bits_per_bf
        if self.geometry.filter_kind == "counting":
            per_slot *= self.geometry.counter_bits
        return self.nfilters * per_slot

    def effective_fpp(self) -> float:
        """Nominal fpp adjusted for overflow inserts (Equation 14)."""
        if self.nkeys == 0:
            return 0.0
        base = self.geometry.fpp
        if self.extra_inserts == 0:
            return base
        nominal = self.nkeys - self.extra_inserts
        if nominal <= 0:
            return 1.0
        return fpp_after_inserts(base, self.extra_inserts / nominal)

    def measured_fill(self) -> float:
        """Mean fill fraction across populated filters (diagnostics)."""
        populated = [f for f in self.filters if f.count]
        if not populated:
            return 0.0
        return sum(f.fill_fraction() for f in populated) / len(populated)


class LeafOverflow(Exception):
    """Raised when an insert needs more page coverage than the leaf budget."""
