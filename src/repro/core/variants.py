"""Bloom-filter variants discussed by the paper (§2 related work, §7).

The paper's BF-leaves use plain Bloom filters plus a deleted-key list;
§7 notes that "a different approach is to exploit variations of BFs that
support deletes [7, 39] after considering their space and performance
characteristics", and §2 surveys Scalable Bloom Filters [2] for growing
element counts.  This module provides both variations so the trade-off
can actually be measured (see ``benchmarks/bench_ablation_deletes.py``):

* :class:`CountingBloomFilter` — d-bit counters instead of bits; removals
  decrement, so deletes neither raise the fpp (in-place deletion) nor
  grow a tombstone list.  Costs ``d`` times the space.
* :class:`ScalableBloomFilter` — a series of plain filters with
  geometrically tightening fpps, so the compound false-positive rate
  stays below a configured ceiling no matter how many elements arrive.
"""

from __future__ import annotations

import math

from repro.core.bloom import DEFAULT_HASH_COUNT, BloomFilter, bits_for_capacity
from repro.core.hashing import bloom_positions, key_to_int


class CountingBloomFilter:
    """Bloom filter with small per-position counters (supports deletes).

    Each of the ``nbits`` positions holds a saturating counter of
    ``counter_bits`` bits (4 is the classic choice: overflow probability
    is negligible for realistic loads).  Membership semantics match
    :class:`~repro.core.bloom.BloomFilter`; :meth:`remove` decrements the
    key's counters, restoring the exact pre-insert state unless a counter
    ever saturated.
    """

    __slots__ = ("nbits", "k", "seed", "counter_bits", "_counters", "count")

    _SATURATED = object()

    def __init__(
        self,
        nbits: int,
        k: int = DEFAULT_HASH_COUNT,
        seed: int = 0,
        counter_bits: int = 4,
    ) -> None:
        if nbits <= 0:
            raise ValueError("nbits must be positive")
        if k <= 0:
            raise ValueError("k must be positive")
        if counter_bits < 2:
            raise ValueError("counter_bits must be >= 2")
        self.nbits = nbits
        self.k = k
        self.seed = seed
        self.counter_bits = counter_bits
        self._counters = bytearray(nbits)
        self.count = 0

    @classmethod
    def for_capacity(
        cls, nkeys: int, fpp: float, k: int = DEFAULT_HASH_COUNT,
        seed: int = 0, counter_bits: int = 4,
    ) -> "CountingBloomFilter":
        """Size for ``nkeys`` at ``fpp`` (same position math as Eq. 1)."""
        nbits = max(1, math.ceil(bits_for_capacity(max(nkeys, 1), fpp)))
        return cls(nbits=nbits, k=k, seed=seed, counter_bits=counter_bits)

    @property
    def _max_count(self) -> int:
        return (1 << self.counter_bits) - 1

    def _positions(self, key: object) -> list[int]:
        return bloom_positions(key_to_int(key), self.k, self.nbits, self.seed)

    # ------------------------------------------------------------------
    def add(self, key: object) -> None:
        """Insert ``key`` (counters saturate rather than overflow)."""
        self.add_positions(self._positions(key))

    def add_positions(self, positions) -> None:
        """Insert one key given its precomputed k counter positions.

        Counterpart of :meth:`BloomFilter.add_positions`, so a BF-leaf's
        batch write path can hash once per leaf for either filter kind.
        Unlike a plain filter, a duplicate insert is *not* a no-op: the
        counters increment again (and decrement again on remove).
        """
        counters = self._counters
        cap = self._max_count
        for pos in positions:
            if counters[pos] < cap:
                counters[pos] += 1
        self.count += 1

    def contains_positions(self, positions) -> bool:
        """Membership test of one key's precomputed positions."""
        counters = self._counters
        return all(counters[pos] > 0 for pos in positions)

    def remove(self, key: object) -> bool:
        """Delete one occurrence of ``key``.

        Returns False (and changes nothing) when the filter definitely
        never contained the key.  Decrementing a saturated counter is
        skipped — the classic safe-under-saturation rule — which can leave
        residual bits but never introduces false negatives.
        """
        return self.remove_positions(self._positions(key))

    def remove_positions(self, positions) -> bool:
        """:meth:`remove` given one key's precomputed positions."""
        counters = self._counters
        if any(counters[pos] == 0 for pos in positions):
            return False
        cap = self._max_count
        for pos in positions:
            if counters[pos] < cap:
                counters[pos] -= 1
        self.count = max(0, self.count - 1)
        return True

    def might_contain(self, key: object) -> bool:
        return self.contains_positions(self._positions(key))

    __contains__ = might_contain

    def might_contain_many(self, keys):
        """Vectorized :meth:`might_contain` for a batch of keys."""
        import numpy as np

        from repro.core.hashing import bloom_positions_batch, keys_to_int_array

        if len(keys) == 0:
            return np.zeros(0, dtype=bool)
        keys = keys_to_int_array(keys)
        positions = bloom_positions_batch(keys, self.k, self.nbits, self.seed)
        return self.test_positions(positions)

    def test_positions(self, positions):
        """Membership of precomputed ``(n, k)`` positions (one row per key).

        Same contract as :meth:`BloomFilter.test_positions`, so a BF-leaf
        can batch-probe counting filters through the shared-hash path.
        """
        import numpy as np

        counters = np.frombuffer(self._counters, dtype=np.uint8)
        return (counters[positions] > 0).all(axis=1)

    def bulk_add(self, keys) -> None:
        """Vectorized insert of a NumPy integer array.

        Saturation is applied after accumulation, which can differ from
        the scalar path only when a counter crosses the cap mid-batch —
        harmless, since saturated counters are never decremented anyway.
        """
        import numpy as np

        from repro.core.hashing import bloom_positions_batch

        keys = np.asarray(keys)
        if len(keys) == 0:
            return
        positions = bloom_positions_batch(keys, self.k, self.nbits, self.seed)
        counters = np.frombuffer(self._counters, dtype=np.uint8)
        accumulated = counters.astype(np.int64)
        np.add.at(accumulated, positions.ravel(), 1)
        np.minimum(accumulated, self._max_count, out=accumulated)
        counters[:] = accumulated.astype(np.uint8)
        self.count += len(keys)

    # ------------------------------------------------------------------
    def fill_fraction(self) -> float:
        nonzero = sum(1 for c in self._counters if c)
        return nonzero / self.nbits

    def effective_fpp(self) -> float:
        return self.fill_fraction() ** self.k

    def size_bytes(self) -> int:
        """Space cost: counter_bits per position (the §7 trade-off)."""
        return -(-self.nbits * self.counter_bits // 8)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"CountingBloomFilter(nbits={self.nbits}, k={self.k}, "
            f"count={self.count}, counter_bits={self.counter_bits})"
        )


class ScalableBloomFilter:
    """Almeida et al.'s Scalable Bloom Filter (paper §2, ref [2]).

    A sequence of plain filters: each new stage doubles the capacity
    (``growth``) and tightens its fpp by ``tightening``; the compound
    false-positive probability is bounded by ``max_fpp / (1 -
    tightening)``.  Lets a BF-leaf absorb unbounded inserts while keeping
    accuracy, at the cost of probing every stage.
    """

    def __init__(
        self,
        initial_capacity: int = 64,
        max_fpp: float = 0.01,
        growth: int = 2,
        tightening: float = 0.5,
        k: int | None = None,
        seed: int = 0,
    ) -> None:
        if initial_capacity <= 0:
            raise ValueError("initial_capacity must be positive")
        if not 0.0 < max_fpp < 1.0:
            raise ValueError("max_fpp must be in (0, 1)")
        if growth < 2:
            raise ValueError("growth must be >= 2")
        if not 0.0 < tightening < 1.0:
            raise ValueError("tightening must be in (0, 1)")
        self.initial_capacity = initial_capacity
        self.max_fpp = max_fpp
        self.growth = growth
        self.tightening = tightening
        self.seed = seed
        self._explicit_k = k
        self._stages: list[BloomFilter] = []
        self._stage_capacity: list[int] = []
        self.count = 0
        self._add_stage()

    def _add_stage(self) -> None:
        index = len(self._stages)
        capacity = self.initial_capacity * (self.growth ** index)
        # First stage takes fpp * (1 - tightening) so the series sum stays
        # below max_fpp.
        stage_fpp = self.max_fpp * (1 - self.tightening) * (
            self.tightening ** index
        )
        nbits = max(8, math.ceil(bits_for_capacity(capacity, stage_fpp)))
        k = self._explicit_k
        if k is None:
            k = max(1, round(nbits / capacity * math.log(2)))
        self._stages.append(
            BloomFilter(nbits=nbits, k=k, seed=self.seed + index)
        )
        self._stage_capacity.append(capacity)

    # ------------------------------------------------------------------
    def add(self, key: object) -> None:
        """Insert into the newest stage, opening a new one when full."""
        stage = self._stages[-1]
        if stage.count >= self._stage_capacity[-1]:
            self._add_stage()
            stage = self._stages[-1]
        stage.add(key)
        self.count += 1

    def might_contain(self, key: object) -> bool:
        """Probe every stage, newest first (recent keys most likely)."""
        return any(
            stage.might_contain(key) for stage in reversed(self._stages)
        )

    __contains__ = might_contain

    def might_contain_many(self, keys):
        """Vectorized :meth:`might_contain`: OR of every stage's batch test."""
        import numpy as np

        from repro.core.hashing import keys_to_int_array

        keys = keys_to_int_array(keys)
        result = np.zeros(len(keys), dtype=bool)
        for stage in reversed(self._stages):
            result |= stage.might_contain_many(keys)
        return result

    # ------------------------------------------------------------------
    @property
    def n_stages(self) -> int:
        return len(self._stages)

    def compound_fpp_bound(self) -> float:
        """Upper bound on the overall false-positive probability."""
        return self.max_fpp

    def expected_fpp(self) -> float:
        """1 - prod(1 - fpp_i) over the populated stages."""
        acc = 1.0
        for stage in self._stages:
            acc *= 1.0 - stage.expected_fpp()
        return 1.0 - acc

    def size_bytes(self) -> int:
        return sum(stage.size_bytes() for stage in self._stages)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ScalableBloomFilter(stages={self.n_stages}, "
            f"count={self.count}, max_fpp={self.max_fpp})"
        )
