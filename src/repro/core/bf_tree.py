"""BF-Tree: the paper's approximate tree index (Section 4).

A :class:`BFTree` keeps B+-Tree-style internal nodes (shared machinery in
:mod:`repro.core.node`) over Bloom-filter leaves
(:class:`~repro.core.bf_leaf.BFLeaf`).  It indexes a
:class:`~repro.storage.relation.Relation` whose tuples are *ordered or
partitioned* on the indexed attribute — the implicit-clustering assumption
of §1.1.

Algorithms implemented, with their paper counterparts:

* :meth:`BFTree.search`      — Algorithm 1 (probe all BFs of the leaf,
  fetch matching pages sorted, stop early for unique keys).
* :meth:`BFTree.search_many` — vectorized Algorithm 1 over a probe batch:
  identical results and I/O charging to per-key ``search`` calls, with
  all Bloom-filter tests collapsed into NumPy passes (one per touched
  leaf).  The harness's ``run_probes(..., batch=True)`` and the CLI's
  ``probe --batch`` run on it.
* :meth:`BFTree.insert`      — Algorithm 3 (extend key range, bump #keys,
  add to the per-page BF; split when over capacity).
* :meth:`BFTree.insert_many` / :meth:`BFTree.delete_many` — vectorized
  Algorithm 3 over a write batch: identical tree state, filter bitsets
  and I/O charging to the scalar loop (splits included, handled by
  re-planning the affected sub-batch), with the batch routed in one
  pass and hashed once per target leaf.  The Router's write batching
  and ``serve-bench``'s batch write mode run on it.
* :meth:`BFTree._split_leaf` — Algorithm 2 (rebuild two leaves; we rebuild
  by re-scanning the leaf's small page range, the recomputation that §3
  argues is feasible precisely because leaf ranges are small).
* :meth:`BFTree.bulk_load`   — §4.2 bulk loading (one pass over the data,
  one pass building the directory over the leaves).
* :meth:`BFTree.range_scan`  — §7 range scans with optional
  boundary-partition enumeration.
* :meth:`BFTree.range_scan_many` — vectorized §7 range scans over a
  batch of windows: identical per-scan results and I/O charging to the
  scalar loop, with window routing done in one pass over the flattened
  directory, page runs charged in aggregate (Eq. 13 split preserved)
  and match counting collapsed into NumPy passes.  The Router's scan
  batching and ``serve-bench``'s batch scan mode run on it.
* :meth:`BFTree.intersect_probe` — §8 index intersection.

Storage binding: the tree's structure is device-independent.  Before
measuring, call :meth:`bind` with a :class:`~repro.storage.config.
StorageStack`; internal/leaf node accesses then charge the index device
(optionally through a warm buffer pool) and data-page fetches charge the
data device.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace
from typing import Sequence

import numpy as np

from repro.api.protocol import Capabilities, IndexBackend
from repro.analysis.sanitize import maybe_check
from repro.api.results import (
    DeleteOutcome,
    RangeScanResult,
    SearchResult,
    as_scalar,
    normalize_scan_windows,
)
from repro.core.bf_leaf import (
    DUPLICATE_TRUST_MAX_FPP,
    LEAF_HEADER_BYTES,
    BFLeaf,
    BFLeafGeometry,
    LeafOverflow,
)
from repro.core.node import InnerTree, NodeStore, fanout_for, route_batch
from repro.storage.buffer_pool import BufferPool
from repro.storage.clock import CPU_BLOOM_INSERT, CPU_BLOOM_PROBE, CPU_KEY_COMPARE
from repro.storage.config import StorageStack
from repro.storage.device import PAGE_SIZE, Device, classify_read_runs
from repro.storage.relation import Relation


#: The skew guard's floor: filters are sized so the realized aggregate
#: false-positive rate never exceeds max(fpp, this) even when per-group
#: key counts are skewed.  Below this rate skew effects are unmeasurable
#: in thousand-probe experiments, and Equation-1 sizing (which the paper's
#: Table 2 is computed with) takes over.
SKEW_GUARD_FPP = 1e-4

#: Expected false data pages per probe the skew guard tolerates when it
#: re-sizes filters (half a page: invisible next to the true-match fetch).
FALSE_PAGE_BUDGET = 0.5


@dataclass(frozen=True)
class BFTreeConfig:
    """Tuning knobs of a BF-Tree (paper §4.1).

    ``fpp`` is the headline accuracy knob.  ``pages_per_bf`` sets the
    indexing granularity (data pages per Bloom filter); ``None`` lets the
    tree pick ``max(1, round(avgcard / tuples_per_page))`` so each filter
    covers roughly one key's worth of pages for high-cardinality
    attributes.
    """

    fpp: float = 0.01
    hash_count: int | None = None     # None = optimal k; paper fixes 3
    pages_per_bf: int | None = None
    key_size: int = 8
    ptr_size: int = 8
    page_size: int = PAGE_SIZE
    #: "plain" = the paper's Bloom filters + tombstone deletes;
    #: "counting" = §7's delete-supporting variant (4x filter space).
    filter_kind: str = "plain"

    def __post_init__(self) -> None:
        if not 0.0 < self.fpp < 1.0:
            raise ValueError(f"fpp must be in (0, 1), got {self.fpp}")
        if self.hash_count is not None and self.hash_count < 1:
            raise ValueError("hash_count must be >= 1 (or None for optimal)")
        if self.pages_per_bf is not None and self.pages_per_bf < 1:
            raise ValueError("pages_per_bf must be >= 1 (or None for auto)")
        if self.filter_kind not in ("plain", "counting"):
            raise ValueError(
                f"filter_kind must be 'plain' or 'counting', "
                f"got {self.filter_kind!r}"
            )


# Canonical result types live in the protocol layer (repro.api.results);
# re-exported here because this was their historical home and the whole
# codebase imports them from repro.core.bf_tree.
__all__ = [
    "BFTree", "BFTreeConfig", "SearchResult", "RangeScanResult",
    "DeleteOutcome", "normalize_scan_windows",
    "SKEW_GUARD_FPP", "FALSE_PAGE_BUDGET",
]


class BFTree(IndexBackend):
    """Approximate tree index over an ordered/partitioned relation."""

    def __init__(
        self,
        relation: Relation,
        key_column: str,
        config: BFTreeConfig | None = None,
        unique: bool = False,
        ordered: bool = True,
    ) -> None:
        self.relation = relation
        self.key_column = key_column
        self.config = config or BFTreeConfig()
        self.unique = unique
        #: True when the column is fully sorted; False for merely
        #: *partitioned* data (implicit clustering, §1.1), where leaf key
        #: ranges may overlap and probes check neighbouring leaves.
        self.ordered = ordered
        self.store = NodeStore()
        self.inner = InnerTree(
            self.store,
            fanout=fanout_for(self.config.key_size, self.config.ptr_size,
                              self.config.page_size),
        )
        self.leaves: dict[int, BFLeaf] = {}
        self.geometry: BFLeafGeometry | None = None
        self._data_device: Device | None = None
        self._index_pool: BufferPool | None = None
        self._avg_cardinality = 1.0

    # ==================================================================
    # construction
    # ==================================================================
    @classmethod
    def bulk_load(
        cls,
        relation: Relation,
        key_column: str,
        config: BFTreeConfig | None = None,
        unique: bool = False,
        ordered: bool | None = None,
    ) -> "BFTree":
        """Build a packed BF-Tree in one pass over the data (paper §4.2).

        ``ordered=None`` auto-detects: a fully sorted column gets the
        ordered layout (spill-back handling for boundary-spanning keys,
        early-terminating fetches).  Pass ``ordered=False`` to index a
        merely *partitioned* column — e.g. TPCH's commitdate when the
        table is sorted on shipdate (the implicit clustering of §1.1).
        Leaf key ranges may then overlap, and probes also check
        neighbouring leaves whose ranges contain the key.  An unsorted
        column without ``ordered=False`` is rejected, because silently
        indexing badly-clustered data would produce a uselessly slow
        index.
        """
        keys = np.asarray(relation.columns[key_column])
        if len(keys) == 0:
            raise ValueError("cannot bulk load an empty relation")
        is_sorted = not np.any(keys[1:] < keys[:-1])
        if ordered is None:
            ordered = is_sorted
            if not is_sorted:
                raise ValueError(
                    f"column {key_column!r} is not ordered; pass "
                    "ordered=False to index partitioned data (paper §4.1)"
                )
        if ordered and not is_sorted:
            raise ValueError(
                f"column {key_column!r} is not sorted but ordered=True"
            )
        tree = cls(relation, key_column, config, unique, ordered=ordered)
        tree._avg_cardinality = len(keys) / max(1, len(np.unique(keys)))
        tree.geometry = tree._plan_geometry(keys if ordered else None)
        tree._build_leaves(keys)
        tree._build_directory()
        return tree

    @classmethod
    def from_leaves(
        cls,
        relation: Relation,
        key_column: str,
        leaves: Sequence[BFLeaf],
        config: BFTreeConfig | None = None,
        unique: bool = False,
        ordered: bool = True,
        geometry: BFLeafGeometry | None = None,
        avg_cardinality: float = 1.0,
    ) -> "BFTree":
        """Build a tree over an existing contiguous run of BF-leaves.

        This is the shard-safe construction path: a sharded service
        slices one bulk-loaded tree's leaf chain into contiguous runs
        and rebuilds an independent directory over each run, so every
        shard probes *exactly* the filters the unsharded tree would —
        identical Bloom bit patterns, identical false positives,
        identical data-page runs.  The method takes **ownership** of the
        leaf objects (node ids are reallocated from this tree's store
        and chain pointers are relinked and severed at the run's ends),
        so the donor tree must be discarded afterwards.

        ``geometry`` and ``avg_cardinality`` should be copied from the
        donor so size accounting and any later splits keep the donor's
        filter sizing.
        """
        if not leaves:
            raise ValueError("from_leaves needs at least one leaf")
        tree = cls(relation, key_column, config, unique, ordered=ordered)
        tree._avg_cardinality = avg_cardinality
        tree.geometry = (
            BFLeafGeometry(**vars(geometry)) if geometry is not None
            else BFLeafGeometry(**vars(leaves[0].geometry))
        )
        for leaf in leaves:
            # Pin the filter hash seed before the node id changes hands:
            # existing filters carry the donor's seed, and any filter the
            # leaf grows later must hash identically (the vectorized
            # probe path hashes each key batch once per leaf).
            if leaf.filter_seed is None:
                leaf.filter_seed = (
                    leaf.filters[0].seed if leaf.filters else leaf.node_id
                )
            leaf.node_id = tree.store.allocate()
            tree.leaves[leaf.node_id] = leaf
        for prev, nxt in zip(leaves, leaves[1:]):
            prev.next_leaf_id = nxt.node_id
            nxt.prev_leaf_id = prev.node_id
        leaves[0].prev_leaf_id = None
        leaves[-1].next_leaf_id = None
        tree._leaf_order = [leaf.node_id for leaf in leaves]
        tree._build_directory()
        return tree

    def _plan_geometry(self, keys: np.ndarray | None = None) -> BFLeafGeometry:
        """Size the per-group filters from the data's key distribution.

        The granularity (pages per filter) targets roughly one key's
        worth of pages; the filter *bits* come from
        :meth:`_solve_filter_bits`, which makes the aggregate
        false-positive rate over the observed per-group key counts hit
        the target.  With uniform cardinality this reduces to Equation 1;
        with variable cardinality (the smart-home dataset, §6.5) it pays
        the extra bits skew requires, which is why the paper's SHD gains
        are only 2-3x against 12-48x for uniform data.
        """
        tpp = self.relation.tuples_per_page
        g = self.config.pages_per_bf
        if g is None:
            # Bias toward fine granularity: the paper says one filter per
            # page "gives the best results" (§4.1); only go coarser when a
            # single key's duplicates clearly span multiple pages.
            g = max(1, int(self._avg_cardinality / tpp))
        keys_stats = keys
        if keys_stats is None:
            keys_stats = np.asarray(self.relation.columns[self.key_column])
        # Equation-1 accounting (the paper's Table 2 is computed with it):
        # keys per group from tuples-per-page over the average cardinality.
        # Boundary-straddling keys load filters slightly above this
        # estimate; when that drift is material the gate below corrects it.
        expected = max(1.0, g * tpp / self._avg_cardinality)
        per_group = None
        if len(keys_stats) > tpp:
            per_group = self._keys_per_group(keys_stats, g)
        geometry = BFLeafGeometry.plan(
            fpp=self.config.fpp,
            expected_keys_per_group=expected,
            pages_per_bf=g,
            hash_count=self.config.hash_count,
            page_size=self.config.page_size,
            filter_kind=self.config.filter_kind,
        )
        if per_group is not None:
            realized = self._aggregate_rate(
                per_group, geometry.bits_per_bf, geometry.hash_count
            )
            # Engage the skew guard only on *material* blowups: the
            # realized rate must be above the design point AND cost more
            # than a token number of false pages per probe.  Tiny drifts
            # (a uniform PK, or very tight fpp where the realized rate is
            # still unmeasurable) keep the paper's Equation-1 sizes;
            # catastrophic skew (the SHD feed, where low-cardinality
            # regions overfill their filters toward fpp ~ 0.3) pays
            # exactly the bits it needs.
            expected_false_pages = realized * geometry.max_filters
            if (realized > 2 * self.config.fpp
                    and expected_false_pages > FALSE_PAGE_BUDGET):
                # Resize so a probe wastes at most ~half a page on false
                # positives (and never demand better than the nominal
                # fpp): the guard corrects material damage, it does not
                # gold-plate.
                guard_fpp = max(
                    self.config.fpp,
                    min(SKEW_GUARD_FPP * 5,
                        FALSE_PAGE_BUDGET / geometry.max_filters),
                )
                bits, k = self._solve_filter_bits(per_group, guard_fpp)
                if self.config.hash_count is not None:
                    k = self.config.hash_count
                geometry = replace(
                    geometry,
                    bits_per_bf=bits,
                    hash_count=k,
                    max_filters=max(1, (
                        (self.config.page_size - LEAF_HEADER_BYTES) * 8
                        // (bits * (geometry.counter_bits
                                    if geometry.filter_kind == "counting"
                                    else 1))
                    )),
                )
        return geometry

    @staticmethod
    def _aggregate_rate(per_group: np.ndarray, bits: int, k: int) -> float:
        """Expected aggregate fpp of ``bits``-bit k-hash filters under the
        empirical per-group key counts."""
        return float(np.mean((1.0 - np.exp(-k * per_group / bits)) ** k))

    def _solve_filter_bits(self, per_group: np.ndarray, fpp: float
                           ) -> tuple[int, int]:
        """Smallest filter size whose *aggregate* fpp hits the target.

        With uniform cardinality every group holds the mean key count and
        this reduces to Equation 1.  With skewed cardinality (the SHD
        feed) the heavy groups overfill mean-sized filters and the
        realized fpp explodes (§4.1's skew hazard); solving

            mean_g (1 - e^{-k n_g / b})^k  =  fpp

        over the empirical per-group counts ``n_g`` pays exactly the bits
        the skew requires and no more.
        """
        from repro.core.bloom import LN2, bits_for_capacity

        mean_n = max(1e-9, float(per_group.mean()))

        def k_for(bits: float) -> int:
            return max(1, min(32, round(bits / mean_n * LN2)))

        def rate(bits: float) -> float:
            k = k_for(bits)
            return float(np.mean(
                (1.0 - np.exp(-k * per_group / bits)) ** k
            ))

        lo = max(4.0, bits_for_capacity(mean_n, fpp) * 0.5)
        hi = lo
        while rate(hi) > fpp and hi < 1e7:
            hi *= 2
        for _ in range(60):
            mid = (lo + hi) / 2
            if rate(mid) > fpp:
                lo = mid
            else:
                hi = mid
        bits = max(4, math.ceil(hi))
        return bits, k_for(bits)

    def _keys_per_group(self, keys: np.ndarray, g: int) -> np.ndarray:
        """Distinct keys in each ``g``-page group of the file."""
        tpp = self.relation.tuples_per_page
        group_tuples = g * tpp
        starts = np.arange(0, len(keys), group_tuples)
        if not self.ordered:
            return np.asarray([
                len(np.unique(keys[s : s + group_tuples])) for s in starts
            ], dtype=np.float64)
        new_key = np.empty(len(keys), dtype=bool)
        new_key[0] = True
        np.not_equal(keys[1:], keys[:-1], out=new_key[1:])
        per_group = np.add.reduceat(new_key, starts).astype(np.float64)
        per_group += ~new_key[starts]
        return per_group

    def _build_leaves(self, keys: np.ndarray) -> None:
        assert self.geometry is not None
        tpp = self.relation.tuples_per_page
        npages = self.relation.npages
        leaf = self._new_leaf(min_pid=0)
        order: list[BFLeaf] = [leaf]
        # First page id on which the running (largest-so-far) key appeared;
        # when a leaf closes mid-key this becomes the new leaf's spill-back
        # origin, regardless of how many leaves the key already spans.
        key_start_pid = 0
        last_key = None
        for pid in range(npages):
            first = pid * tpp
            page_keys = np.unique(keys[first : first + tpp])
            if leaf.is_full and leaf.nkeys > 0:
                spans = (
                    self.ordered
                    and last_key is not None
                    and page_keys[0] == last_key
                )
                new_leaf = self._new_leaf(min_pid=pid)
                if spans:
                    new_leaf.spill_back_pages = pid - key_start_pid
                leaf.next_leaf_id = new_leaf.node_id
                new_leaf.prev_leaf_id = leaf.node_id
                leaf = new_leaf
                order.append(leaf)
            if last_key is None or page_keys[-1] != last_key:
                key_start_pid = pid
            last_key = page_keys[-1].item()
            self._leaf_add_page(leaf, page_keys, pid)
        self._leaf_order = [l.node_id for l in order]

    def _leaf_add_page(self, leaf: BFLeaf, page_keys: np.ndarray,
                       pid: int) -> None:
        """Vectorized page add, growing an oversized leaf for spanning keys."""
        try:
            leaf.add_page_keys(page_keys, pid)
        except LeafOverflow:
            leaf.geometry = replace(
                leaf.geometry, max_filters=leaf.group_of(pid) + 1
            )
            leaf.add_page_keys(page_keys, pid)

    def _leaf_add_unchecked(self, leaf: BFLeaf, key, pid: int) -> None:
        """Add to a leaf, letting it overflow its budget for a spanning key."""
        try:
            leaf.add(key, pid)
        except LeafOverflow:
            # A single key spans more pages than the leaf budget covers:
            # grow this leaf beyond one index page (rare; size accounting
            # below charges the overflow pages).
            leaf.geometry = replace(
                leaf.geometry, max_filters=leaf.group_of(pid) + 1
            )
            leaf.add(key, pid)

    def _new_leaf(self, min_pid: int,
                  filter_seed: int | None = None) -> BFLeaf:
        assert self.geometry is not None
        leaf = BFLeaf(
            node_id=self.store.allocate(),
            geometry=BFLeafGeometry(**vars(self.geometry)),
            min_pid=min_pid,
            filter_seed=filter_seed,
        )
        self.leaves[leaf.node_id] = leaf
        return leaf

    def _build_directory(self) -> None:
        leaf_ids = self._leaf_order
        separators = [self.leaves[lid].min_key for lid in leaf_ids[1:]]
        if not self.ordered and separators:
            # Partitioned data: leaf minimums need not be monotone; the
            # directory's binary search wants non-decreasing fences, and
            # the neighbour walk at probe time covers the fuzz.
            running = separators[0]
            monotone = []
            for sep in separators:
                running = max(running, sep)
                monotone.append(running)
            separators = monotone
        self.inner.build(separators, leaf_ids)

    # ==================================================================
    # storage binding
    # ==================================================================
    def bind(self, stack: StorageStack, warm: bool = False) -> None:
        """Attach the tree to a storage stack before measuring.

        ``warm=True`` models the paper's warm-cache mode: all internal
        nodes are memory-resident, so only the leaf access (and data pages)
        cost device I/O.
        """
        self.store.device = stack.index_device
        self._data_device = stack.data_device
        if warm:
            # Paper warm-cache semantics: internal nodes resident, leaf
            # accesses still cause I/O - so misses are never admitted.
            pool = BufferPool(stack.index_device, capacity_pages=None,
                              admit_on_miss=False)
            pool.prefault(self.inner.internal_node_ids())
            self._index_pool = pool
        else:
            self._index_pool = None
        self.store.pool = self._index_pool

    def unbind(self) -> None:
        """Detach from any storage stack (accesses become free)."""
        self.store.device = None
        self.store.pool = None
        self._data_device = None
        self._index_pool = None

    def _clock(self):
        if self.store.device is not None:
            return self.store.device.clock
        return None

    def _charge_cpu(self, seconds: float) -> None:
        clock = self._clock()
        if clock is not None:
            clock.advance(seconds)

    def _stats(self):
        if self.store.device is not None:
            return self.store.device.stats
        return None

    # ==================================================================
    # Index protocol surface (repro.api)
    # ==================================================================
    def capabilities(self) -> Capabilities:
        return Capabilities(ordered=self.ordered, mutable=True,
                            scannable=True, unique=self.unique)

    def write_target(self, tid: int) -> int:
        """BF-Trees index data *pages*: the write target of tuple ``tid``
        is its page id (rid-based backends keep the tuple id)."""
        return self.relation.page_of(int(tid))

    def _sim_clock(self):
        return self._clock()

    supports_sharding = True

    def shard_leaves(self) -> list:
        """Leaf chain in key order, ready for ShardedIndex slicing."""
        if not self.ordered:
            raise ValueError(
                "ShardedIndex requires an ordered column (partitioned "
                "data would probe neighbour leaves across shard borders)"
            )
        return [self.leaves[lid] for lid in self._leaf_order]

    def shard_from_leaves(self, run: list) -> "BFTree":
        return BFTree.from_leaves(
            self.relation, self.key_column, run,
            config=self.config, unique=self.unique, ordered=self.ordered,
            geometry=self.geometry, avg_cardinality=self._avg_cardinality,
        )

    @staticmethod
    def shard_leaf_span(leaf) -> tuple:
        return (leaf.min_key, leaf.max_key)

    @staticmethod
    def shard_cut_spans(left, right) -> bool:
        if right.spill_back_pages:
            return True
        return right.min_key is not None and right.min_key == left.max_key

    # ==================================================================
    # checkpoint hooks (repro.persist)
    # ==================================================================
    def snapshot_state(self) -> dict:
        """Full structural dump: directory, leaf chain, filter bitsets.

        Node ids, chain pointers and the allocator cursor are captured
        verbatim so a restored tree is *bit-identical* to the original —
        same descent paths, same filter bit patterns (and therefore the
        same false positives), same simulated I/O charges.  Filter seeds
        ride along per leaf, exactly as in the sharding path.
        """
        return {
            "format": "bf-tree",
            "column": self.key_column,
            "config": {f.name: getattr(self.config, f.name)
                       for f in fields(self.config)},
            "unique": self.unique,
            "ordered": self.ordered,
            "avg_cardinality": self._avg_cardinality,
            "geometry": (None if self.geometry is None
                         else dict(vars(self.geometry))),
            "inner": self.inner.state_dict(),
            "leaves": [self._leaf_state(leaf)
                       for leaf in self.leaves_in_order()],
        }

    @staticmethod
    def _filters_state(filters) -> dict:
        """Columnar dump of a leaf's per-group filters.

        A leaf holds one filter per page group — hundreds for a large
        leaf — so per-filter JSON dicts would dwarf the actual bit
        arrays.  Instead the metadata rides in packed arrays and every
        bit/counter payload is concatenated into one blob per kind,
        keeping the checkpoint close to the information-theoretic size
        the paper's Table 2 space story depends on.
        """
        from repro.core.variants import CountingBloomFilter

        n = len(filters)
        kinds = np.zeros(n, dtype=np.uint8)  # 0 = plain, 1 = counting
        nbits = np.zeros(n, dtype=np.int32)
        ks = np.zeros(n, dtype=np.int16)
        seeds = np.zeros(n, dtype=np.int64)
        counts = np.zeros(n, dtype=np.int32)
        counter_bits = np.zeros(n, dtype=np.uint8)
        word_parts: list[np.ndarray] = []
        counter_parts: list[bytes] = []
        for i, f in enumerate(filters):
            nbits[i], ks[i], seeds[i] = f.nbits, f.k, f.seed
            counts[i] = f.count
            if isinstance(f, CountingBloomFilter):
                kinds[i] = 1
                counter_bits[i] = f.counter_bits
                counter_parts.append(bytes(f._counters))
            else:
                word_parts.append(np.asarray(f._words, dtype=np.uint64))
        return {
            "n": n,
            "kinds": kinds,
            "nbits": nbits,
            "k": ks,
            "seed": seeds,
            "count": counts,
            "counter_bits": counter_bits,
            "words": (np.concatenate(word_parts) if word_parts
                      else np.zeros(0, dtype=np.uint64)),
            "counters": b"".join(counter_parts),
        }

    def _leaf_state(self, leaf: BFLeaf) -> dict:
        return {
            "node_id": leaf.node_id,
            "min_pid": leaf.min_pid,
            "min_key": leaf.min_key,
            "max_key": leaf.max_key,
            "nkeys": leaf.nkeys,
            "pages_covered": leaf.pages_covered,
            "deleted_keys": sorted(leaf.deleted_keys),
            "extra_inserts": leaf.extra_inserts,
            "spill_back_pages": leaf.spill_back_pages,
            "filter_seed": leaf.filter_seed,
            "geometry": dict(vars(leaf.geometry)),
            "filters": self._filters_state(leaf.filters),
        }

    @staticmethod
    def _filters_from_state(rec: dict) -> list:
        from repro.core.bloom import BloomFilter
        from repro.core.variants import CountingBloomFilter

        kinds = np.asarray(rec["kinds"], dtype=np.uint8)
        nbits = np.asarray(rec["nbits"], dtype=np.int64)
        ks = np.asarray(rec["k"], dtype=np.int64)
        seeds = np.asarray(rec["seed"], dtype=np.int64)
        counts = np.asarray(rec["count"], dtype=np.int64)
        counter_bits = np.asarray(rec["counter_bits"], dtype=np.int64)
        words = np.asarray(rec["words"], dtype=np.uint64)
        counters = rec["counters"]
        filters = []
        w_off = c_off = 0
        for i in range(int(rec["n"])):
            if kinds[i]:
                cf = CountingBloomFilter(
                    int(nbits[i]), int(ks[i]), int(seeds[i]),
                    counter_bits=int(counter_bits[i]),
                )
                span = len(cf._counters)
                cf._counters = bytearray(counters[c_off:c_off + span])
                c_off += span
                cf.count = int(counts[i])
                filters.append(cf)
            else:
                bf = BloomFilter(int(nbits[i]), int(ks[i]), int(seeds[i]))
                span = len(bf._words)
                bf._words = words[w_off:w_off + span].copy()
                w_off += span
                bf.count = int(counts[i])
                filters.append(bf)
        return filters

    @staticmethod
    def _leaf_from_state(rec: dict) -> BFLeaf:
        seed = rec["filter_seed"]
        return BFLeaf(
            node_id=int(rec["node_id"]),
            geometry=BFLeafGeometry(**rec["geometry"]),
            min_pid=int(rec["min_pid"]),
            min_key=rec["min_key"],
            max_key=rec["max_key"],
            nkeys=int(rec["nkeys"]),
            filters=BFTree._filters_from_state(rec["filters"]),
            pages_covered=int(rec["pages_covered"]),
            deleted_keys=set(rec["deleted_keys"]),
            extra_inserts=int(rec["extra_inserts"]),
            spill_back_pages=int(rec["spill_back_pages"]),
            filter_seed=None if seed is None else int(seed),
        )

    def restore_state(self, state: dict) -> None:
        if state.get("format") != "bf-tree":
            raise ValueError(
                f"BFTree cannot restore snapshot format "
                f"{state.get('format')!r}"
            )
        self.config = BFTreeConfig(**state["config"])
        self.unique = bool(state["unique"])
        self.ordered = bool(state["ordered"])
        self._avg_cardinality = float(state["avg_cardinality"])
        geo = state["geometry"]
        self.geometry = None if geo is None else BFLeafGeometry(**geo)
        self.leaves = {}
        chain: list[BFLeaf] = []
        for rec in state["leaves"]:
            leaf = self._leaf_from_state(rec)
            self.leaves[leaf.node_id] = leaf
            chain.append(leaf)
        for prev, nxt in zip(chain, chain[1:]):
            prev.next_leaf_id = nxt.node_id
            nxt.prev_leaf_id = prev.node_id
        if chain:
            chain[0].prev_leaf_id = None
            chain[-1].next_leaf_id = None
        self._leaf_order = [leaf.node_id for leaf in chain]
        self.inner.load_state(state["inner"])
        maybe_check(self)

    # ==================================================================
    # point search (Algorithm 1)
    # ==================================================================
    def search(self, key) -> SearchResult:
        """Probe the tree for ``key`` and fetch matching tuples.

        Walks the internal nodes (one index read per level), reads the
        BF-leaf, probes all of its Bloom filters, then fetches the matching
        data-page runs in sorted page order — each run charged one random
        positioning plus sequential reads for its remaining pages (the
        sorted run list handed to the controller, Eq. 13).  For a unique
        index the fetch loop stops at the first match.  On partitioned
        (not fully sorted) data, neighbouring leaves whose key ranges
        also contain the key are probed too.
        """
        leaf = self._descend_and_read(key)
        if leaf is None:
            return SearchResult(found=False)
        stats = self._stats()
        runs: list[tuple[int, int]] = []
        covered = False
        for candidate in self._candidate_leaves(key, leaf):
            if not candidate.covers_key(key):
                continue
            covered = True
            if stats is not None:
                stats.bloom_probes += candidate.nfilters
            self._charge_cpu(candidate.nfilters * CPU_BLOOM_PROBE)
            runs.extend(candidate.matching_page_runs(key))
        if not covered:
            return SearchResult(found=False)
        return self._fetch_runs(key, sorted(runs))

    def search_many(self, keys,
                    latency_sink: list[float] | None = None
                    ) -> list[SearchResult]:
        """Vectorized Algorithm 1 over a whole batch of probe keys.

        Returns exactly ``[self.search(k) for k in keys]`` — the same
        per-key :class:`SearchResult`, the same IOStats counters and the
        same simulated clock time (the identical set of charges, summed
        in a different order, so the float total can differ in its last
        couple of bits) — but the Bloom-filter membership
        tests, the scalar path's dominant CPU cost (one Python-level loop
        per filter per probe), collapse into one NumPy pass per touched
        leaf: keys are routed first, grouped by candidate leaf, and each
        leaf hashes and tests its whole key group at once via
        :meth:`BFLeaf.matching_page_runs_many`.  Descents, leaf reads and
        data-page fetches are charged per key just as ``search`` does.

        ``latency_sink``, if given, receives one simulated per-key
        latency per probe (aligned with ``keys``): every clock charge on
        the batch path happens inside the per-key routing loop (phase 1)
        or the per-key fetch loop (phase 3) — the vectorized filter pass
        charges nothing — so bracketing those two loop bodies recovers
        exactly the latency the scalar ``search`` would report.  The
        service layer's tail-latency percentiles are computed from this.
        """
        keys = [as_scalar(k) for k in keys]
        results: list[SearchResult | None] = [None] * len(keys)
        stats = self._stats()
        clock = self._clock()
        track = latency_sink is not None and clock is not None
        latencies = [0.0] * len(keys)
        # Phase 1: route every key, charging descent and candidate-leaf
        # I/O and the per-filter probe CPU exactly like the scalar path.
        pending: list[tuple[int, object, list[BFLeaf]]] = []
        by_leaf: dict[int, list[tuple[int, object]]] = {}
        for i, key in enumerate(keys):
            start = clock.now() if track else 0.0
            leaf = self._descend_and_read(key)
            if leaf is None:
                results[i] = SearchResult(found=False)
                if track:
                    latencies[i] = clock.now() - start
                continue
            candidates = [
                c for c in self._candidate_leaves(key, leaf)
                if c.covers_key(key)
            ]
            if not candidates:
                results[i] = SearchResult(found=False)
                if track:
                    latencies[i] = clock.now() - start
                continue
            for candidate in candidates:
                if stats is not None:
                    stats.bloom_probes += candidate.nfilters
                self._charge_cpu(candidate.nfilters * CPU_BLOOM_PROBE)
                by_leaf.setdefault(candidate.node_id, []).append((i, key))
            pending.append((i, key, candidates))
            if track:
                latencies[i] = clock.now() - start
        # Phase 2: one vectorized filter pass per touched leaf.
        runs_for: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for leaf_id, probe_group in by_leaf.items():
            leaf = self.leaves[leaf_id]
            run_lists = leaf.matching_page_runs_many(
                [key for _, key in probe_group]
            )
            for (i, _), runs in zip(probe_group, run_lists):
                runs_for[(i, leaf_id)] = runs
        # Phase 3: fetch matching pages per key (identical I/O charging,
        # including early termination for unique keys and ordered data).
        for i, key, candidates in pending:
            runs: list[tuple[int, int]] = []
            for candidate in candidates:
                runs.extend(runs_for[(i, candidate.node_id)])
            start = clock.now() if track else 0.0
            results[i] = self._fetch_runs(key, sorted(runs))
            if track:
                latencies[i] += clock.now() - start
        if latency_sink is not None:
            latency_sink.extend(latencies)
        return results

    def _candidate_leaves(self, key, leaf: BFLeaf) -> list[BFLeaf]:
        """Leaves whose key range may contain ``key``.

        For ordered data the directory routes exactly (boundary-spanning
        keys are handled by spill-back), so only the descend target is
        probed.  For partitioned data, overlapping neighbour ranges are
        walked in both directions, one leaf read each.
        """
        if self.ordered:
            return [leaf]
        candidates = [leaf]
        current = leaf
        while current.prev_leaf_id is not None:
            prev = self.leaves.get(current.prev_leaf_id)
            if prev is None or prev.max_key is None or key > prev.max_key:
                break
            self.store.read(prev.node_id)
            candidates.insert(0, prev)
            current = prev
        current = leaf
        while current.next_leaf_id is not None:
            nxt = self.leaves.get(current.next_leaf_id)
            if nxt is None or nxt.min_key is None or key < nxt.min_key:
                break
            self.store.read(nxt.node_id)
            candidates.append(nxt)
            current = nxt
        return candidates

    def _descend_and_read(self, key) -> BFLeaf | None:
        """Route to the leaf for ``key``; charge internal + leaf reads."""
        try:
            leaf_id, path = self.inner.descend(key)
        except LookupError:
            return None
        # Binary search inside each internal node costs CPU.
        self._charge_cpu(
            len(path) * math.log2(max(2, self.inner.fanout)) * CPU_KEY_COMPARE
        )
        self.store.read(leaf_id)
        leaf = self.leaves[leaf_id]
        # Oversized leaves occupy extra index pages, read sequentially.
        extra_pages = self._leaf_index_pages(leaf) - 1
        for _ in range(extra_pages):
            self.store.read(leaf_id, sequential=True)
        return leaf

    def _fetch_runs(self, key, runs: list[tuple[int, int]]) -> SearchResult:
        """Fetch candidate page runs in sorted order and scan them for ``key``.

        Each run is charged like :meth:`Device.read_run` — one random
        positioning for its first page, sequential for the rest — so
        disjoint runs pay one seek each (Eq. 13), matching the accounting
        of ``range_scan`` and ``_rescan_leaf``.  The reads stay page by
        page (rather than a literal ``read_run`` call) so a unique-key
        match or an ordered-data overshoot can still terminate mid-run.
        """
        device = self._data_device
        stats = self._stats()
        result = SearchResult(found=False)
        done = False
        for first_pid, npages in runs:
            run_matches = 0
            run_pages: list[int] = []
            for offset in range(npages):
                pid = first_pid + offset
                if device is not None:
                    device.read_page(pid, sequential=offset > 0)
                run_pages.append(pid)
                page_matches, tids, beyond = self._scan_page(pid, key)
                run_matches += page_matches
                result.matches += page_matches
                result.tids.extend(tids)
                result.pages_read += 1
                if page_matches and self.unique:
                    result.found = True
                    break
                if beyond and self.ordered:
                    # Ordered data: this page already starts past the key,
                    # so no later page can match either.
                    done = True
                    break
            if run_matches == 0:
                result.false_pages += len(run_pages)
                if stats is not None:
                    stats.false_reads += len(run_pages)
            if done or (result.found and self.unique):
                break
        result.found = result.matches > 0
        return result

    def _scan_page(self, pid: int, key) -> tuple[int, list[int], bool]:
        """Scan one (already fetched) data page for ``key``.

        Returns (matches, tids, beyond) where ``beyond`` flags a page whose
        first tuple already exceeds the key — on ordered data everything
        after it is guaranteed not to match.
        """
        view = self.relation.view_page(pid)
        values = view.column(self.key_column)
        matches = 0
        tids: list[int] = []
        examined = 0
        for i, value in enumerate(values):
            examined += 1
            if value == key:
                matches += 1
                tids.append(view.first_tid + i)
            elif value > key and self.ordered:
                break  # ordered data: no later match on this page
        stats = self._stats()
        if stats is not None:
            stats.tuples_scanned += examined
        self._charge_cpu(examined * 25e-9)
        beyond = self.ordered and len(values) > 0 and values[0] > key
        return matches, tids, beyond

    # ==================================================================
    # updates (Algorithms 2 and 3)
    # ==================================================================
    def insert(self, key, pid: int) -> None:
        """Algorithm 3: index ``key`` as living on data page ``pid``.

        Splits the target leaf first when the insert would push it past
        key capacity.  A re-insert of an already-present ``(key, page
        group)`` pair (detected through the group filter itself) cannot
        grow ``nkeys`` — see :meth:`BFLeaf.add` — so it never triggers a
        split.
        """
        leaf = self._descend_and_read(key)
        if leaf is None:
            raise LookupError("insert into an unbuilt tree; bulk_load first")
        self._insert_into(leaf, key, pid)

    def _insert_into(self, leaf: BFLeaf, key, pid: int,
                     positions=None, duplicate: bool | None = None) -> bool:
        """Shared insert tail (after descent charges): split handling,
        the leaf add, and the CPU/write charges.

        ``positions`` are the key's filter bit positions under ``leaf``'s
        hash seed (computed here when omitted); ``duplicate`` is a known
        already-present verdict (the batch path's vectorized pre-test).
        Returns True when a split restructured the tree — the batch
        path's signal to re-plan its remaining keys.
        """
        if positions is None:
            positions = leaf.key_positions(key)
        if duplicate is None:
            duplicate = leaf.duplicate_prehashed(pid, positions)
        split = False
        if not duplicate and leaf.nkeys + 1 > leaf.key_capacity:
            left, right = self._split_leaf(leaf)
            leaf = self._route_after_split(key, left, right)
            split = True
            # The split's children hash with fresh structural seeds.
            positions = None
            duplicate = None
        try:
            if positions is not None:
                leaf.add_prehashed(key, pid, positions, duplicate=duplicate)
            else:
                leaf.add(key, pid)
        except LeafOverflow:
            left, right = self._split_leaf(leaf)
            target = self._route_after_split(key, left, right)
            self._leaf_add_unchecked(target, key, pid)
            leaf = target
            split = True
        self._charge_cpu(CPU_BLOOM_INSERT)
        self.store.write(leaf.node_id)
        return split

    def insert_many(self, keys, pids,
                    latency_sink: list[float] | None = None) -> None:
        """Vectorized Algorithm 3 over a whole batch of inserts.

        Leaves the tree in exactly the state ``[self.insert(k, p) for
        k, p in zip(keys, pids)]`` would — the same leaf structure and
        filter bitsets (splits included, at the same points), the same
        ``nkeys``/tombstone bookkeeping, the same IOStats counters and
        the same simulated clock charges (equal up to float summation
        order) — but the per-key Python work collapses:

        * the batch is routed in one pass over a flattened directory
          (:meth:`InnerTree.routing_table`), then grouped by target leaf;
        * each leaf hashes its key group once
          (:meth:`BFLeaf.hash_batch`) and pre-tests it against its group
          filters vectorized;
        * re-inserts of already-present keys — the steady state of a
          mixed workload, where inserts re-index live keys — queue per
          leaf and flush as one chunk that charges the first key
          normally, then replays the identical charges arithmetically
          for the rest;
        * a split invalidates the plan, so every queue is flushed into
          the pre-split state first and the affected sub-batch (every
          key not yet applied) is re-routed and re-hashed.

        ``latency_sink``, if given, receives one simulated per-op latency
        per insert, exactly as the scalar loop would have bracketed them.
        """
        keys = [as_scalar(k) for k in keys]
        pids = [int(p) for p in pids]
        if len(keys) != len(pids):
            raise ValueError("keys and pids must have the same length")
        n = len(keys)
        clock = self._clock()
        track = latency_sink is not None and clock is not None
        latencies = [0.0] * n
        i = 0
        while i < n:
            try:
                pred, paths, rows, dup0, grp = self._plan_writes(
                    keys, pids, i
                )
            except LookupError:
                raise LookupError(
                    "insert into an unbuilt tree; bulk_load first"
                ) from None
            base = i
            replan = False
            # Known duplicate re-inserts commute (no bits change, no
            # splits, no filter growth), so within one plan round they
            # can be queued per leaf and charge-aggregated in one flush.
            # Any other key flushes its own leaf first (it may grow the
            # leaf's filters or discard tombstones the queued duplicates
            # interact with), and a key about to *split* flushes every
            # queue: queued positions precede the split in scalar order,
            # and their charges must land in the pre-split tree AND
            # buffer-pool state (a split writes inner nodes, which
            # evicts them from a warm pool — charges replayed after it
            # would see misses the scalar loop never paid).  A non-
            # duplicate add also distrusts the plan's duplicate flags
            # for its filter group from then on (``dirty``): it set new
            # bits, which can flip both the membership verdict and the
            # trust gate for later keys, so those re-test live.
            fast_dups = self.config.filter_kind != "counting"
            pending: dict[int, list[int]] = {}
            dirty: set[tuple[int, int]] = set()

            def flush_leaf(leaf_id: int) -> None:
                js = pending.pop(leaf_id, None)
                if js:
                    self._apply_duplicate_chunk(
                        self.leaves[leaf_id], paths[leaf_id],
                        [keys[j] for j in js], [pids[j] for j in js],
                        js, latencies if track else None,
                    )

            try:
                i = self._apply_write_round(
                    keys, pids, i, n, base, pred, paths, rows,
                    dup0, grp, fast_dups, pending, dirty, flush_leaf,
                    clock, track, latencies,
                )
            finally:
                # Queued duplicates precede any aborting key in scalar
                # order; apply them even when an exception propagates.
                for leaf_id in list(pending):
                    flush_leaf(leaf_id)
        if latency_sink is not None:
            latency_sink.extend(latencies)
        maybe_check(self)

    def _apply_write_round(self, keys, pids, i, n, base, pred, paths,
                           rows, dup0, grp, fast_dups, pending, dirty,
                           flush_leaf, clock, track, latencies) -> int:
        """One plan round of :meth:`insert_many`'s apply loop (split out
        so the caller can flush the round's pending queues on any exit).
        Returns the index of the first unapplied key: ``n`` when the
        batch is done, less when a split demands a re-plan."""
        while i < n:
            rel = i - base
            leaf_id = pred[rel]
            known_dup = dup0[rel] and (leaf_id, grp[rel]) not in dirty
            if known_dup and fast_dups:
                pending.setdefault(leaf_id, []).append(i)
                i += 1
                continue
            leaf = self.leaves[leaf_id]
            positions = rows[rel].tolist()
            # Pre-batch flags only say "duplicate"; a negative (or a
            # dirtied flag) is re-tested live, since earlier keys in
            # the batch may have set these bits.
            duplicate = True if known_dup else None
            will_split = False
            if duplicate is None:
                try:
                    duplicate = leaf.duplicate_prehashed(pids[i], positions)
                except ValueError:
                    # pid precedes the leaf range: the add will raise
                    # after the descent charges, as the scalar does.
                    duplicate = None
                if duplicate is False:
                    group = leaf.group_of(pids[i])
                    will_split = (
                        group >= leaf.geometry.max_filters
                        or leaf.nkeys + 1 > leaf.key_capacity
                    )
            if will_split:
                for lid in list(pending):
                    flush_leaf(lid)
            else:
                flush_leaf(leaf_id)
            start = clock.now() if track else 0.0
            self._charge_descent(leaf, paths[leaf_id])
            split = self._insert_into(
                leaf, keys[i], pids[i],
                positions=positions, duplicate=duplicate,
            )
            dirty.add((leaf_id, grp[rel]))
            if track:
                latencies[i] = clock.now() - start
            i += 1
            if split:
                break
        return i

    def _plan_writes(self, keys, pids, start: int):
        """Route ``keys[start:]`` structurally and hash once per leaf.

        Returns ``(pred, paths, rows, dup0, grp)`` — per-key predicted
        leaf id, per-leaf descent paths, per-key filter position rows,
        per-key pre-batch duplicate flags (membership *and* the
        filter-trust gate, both monotone under adds), and per-key
        filter group (-1 when the pid precedes the leaf range).  No I/O
        is charged here: the apply loop replays each key's descent
        charges itself.  Valid until the next split; a flag for a group
        later written by a non-duplicate add is invalidated by the
        apply loop's dirty-set.
        """
        fences, leaf_ids, paths = self.inner.routing_table()
        sub = keys[start:]
        m = len(sub)
        arr = np.asarray(sub)
        slots = np.asarray(route_batch(fences, sub), dtype=np.int64)
        pred = [leaf_ids[s] for s in slots.tolist()]
        pids_sub = np.asarray(pids[start:], dtype=np.int64)
        rows: list = [None] * m
        dup0 = np.zeros(m, dtype=bool)
        grp = np.full(m, -1, dtype=np.int64)
        # Group keys by target leaf with one stable argsort (slot value
        # <-> leaf is 1:1), instead of a per-key dict pass.
        order = np.argsort(slots, kind="stable")
        sorted_slots = slots[order]
        if m:
            bounds = np.nonzero(
                np.r_[True, sorted_slots[1:] != sorted_slots[:-1]]
            )[0].tolist() + [m]
        else:
            bounds = [0]
        for b0, b1 in zip(bounds, bounds[1:]):
            idxs = order[b0:b1]
            leaf = self.leaves[leaf_ids[int(sorted_slots[b0])]]
            positions = leaf.hash_batch(arr[idxs])
            for r, idx in enumerate(idxs.tolist()):
                rows[idx] = positions[r]
            pid_arr = pids_sub[idxs]
            groups = (pid_arr - leaf.min_pid) // leaf.geometry.pages_per_bf
            grp[idxs[pid_arr >= leaf.min_pid]] = \
                groups[pid_arr >= leaf.min_pid]
            if not leaf.filters:
                continue
            valid = (pid_arr >= leaf.min_pid) & (groups < leaf.nfilters)
            vrows = np.nonzero(valid)[0]
            if not len(vrows):
                continue
            # A filter degraded past the trust ceiling no longer counts
            # as duplicate evidence (see BFLeaf.duplicate_prehashed);
            # fill only grows, so distrust is monotone like membership.
            if leaf.geometry.filter_kind == "counting":
                by_group: dict[int, list[int]] = {}
                for r in vrows.tolist():
                    by_group.setdefault(int(groups[r]), []).append(r)
                for group, rs in by_group.items():
                    filt = leaf.filters[group]
                    if filt.effective_fpp() > DUPLICATE_TRUST_MAX_FPP:
                        continue
                    flags = filt.test_positions(positions[rs])
                    for r, flag in zip(rs, flags):
                        dup0[idxs[r]] = bool(flag)
            else:
                # One gather across all of the leaf's filters at once:
                # same geometry => same word count per filter.  The
                # per-filter fill (for the trust gate) comes from one
                # vectorized popcount over the same matrix, with the
                # exact float expression BloomFilter.effective_fpp uses.
                words = np.stack([f._words for f in leaf.filters])
                proto = leaf.filters[0]
                bits_set = np.unpackbits(
                    words.view(np.uint8), axis=1
                ).sum(axis=1)
                fill = bits_set / proto.nbits
                trust = fill ** proto.k <= DUPLICATE_TRUST_MAX_FPP
                pos = positions[vrows]
                g = groups[vrows]
                gathered = words[g[:, None], pos >> 6]
                bits = (gathered >> (pos & 63).astype(np.uint64)) \
                    & np.uint64(1)
                dup0[idxs[vrows]] = bits.all(axis=1) & trust[g]
        return pred, paths, rows, dup0.tolist(), grp.tolist()

    def _charge_descent(self, leaf: BFLeaf, path: list[int]) -> None:
        """Replay the exact charges of ``_descend_and_read`` for a key
        whose target leaf (and internal path) is already known."""
        for node_id in path:
            self.store.read(node_id)
        self._charge_cpu(
            len(path) * math.log2(max(2, self.inner.fanout)) * CPU_KEY_COMPARE
        )
        self.store.read(leaf.node_id)
        extra_pages = self._leaf_index_pages(leaf) - 1
        for _ in range(extra_pages):
            self.store.read(leaf.node_id, sequential=True)

    def _apply_duplicate_chunk(self, leaf: BFLeaf, path: list[int],
                               chunk_keys, chunk_pids, js,
                               latencies: list[float] | None) -> None:
        """Apply a chunk of known re-inserts of already-present keys to
        one leaf (plain filters) in one pass.

        Duplicates change no filter bits, never split, and never grow
        the filter list, so every key charges the identical descent +
        CPU + leaf write sequence: the first key runs through the real
        charging calls (pool behaviour included) and is measured; the
        remaining ``m - 1`` replay that measurement arithmetically
        (clock totals then differ from the scalar loop only by float
        summation order; IOStats stay exact).  Bookkeeping (filter add
        multiplicity, key range, page coverage, tombstone clearing) is
        applied in bulk — all of it commutative, so order inside the
        chunk cannot matter.  ``js`` are the keys' batch indices, for
        the latency scatter.
        """
        m = len(chunk_keys)
        clock = self._clock()
        stats = self._stats()
        before = stats.snapshot() if stats is not None and m > 1 else None
        t0 = clock.now() if clock is not None else 0.0
        self._charge_descent(leaf, path)
        self._charge_cpu(CPU_BLOOM_INSERT)
        self.store.write(leaf.node_id)
        dt = clock.now() - t0 if clock is not None else 0.0
        if m > 1:
            if clock is not None:
                clock.advance(dt * (m - 1))
            if stats is not None:
                delta = stats.diff(before)
                for f in fields(delta):
                    setattr(stats, f.name, getattr(stats, f.name)
                            + (m - 1) * getattr(delta, f.name))
        ppb = leaf.geometry.pages_per_bf
        min_pid = leaf.min_pid
        filters = leaf.filters
        for pid in chunk_pids:
            filters[(pid - min_pid) // ppb].count += 1
        leaf.pages_covered = max(
            leaf.pages_covered, max(chunk_pids) - min_pid + 1
        )
        lo, hi = min(chunk_keys), max(chunk_keys)
        if leaf.min_key is None or lo < leaf.min_key:
            leaf.min_key = lo
        if leaf.max_key is None or hi > leaf.max_key:
            leaf.max_key = hi
        if leaf.deleted_keys:
            leaf.deleted_keys.difference_update(chunk_keys)
        if latencies is not None:
            for j in js:
                latencies[j] = dt

    @staticmethod
    def _route_after_split(key, left: BFLeaf, right: BFLeaf) -> BFLeaf:
        """Post-split insert routing, tolerant of a degenerate empty side.

        ``_split_leaf`` guarantees both sides hold live keys, but a leaf
        whose side went empty (e.g. trees deserialized from older state)
        must not crash routing: an empty side has ``min_key is None``, and
        comparing against ``None`` raises ``TypeError``.
        """
        if right.min_key is None:
            return left
        if left.min_key is None:
            return right
        return right if key >= right.min_key else left

    def insert_overflow(self, key, pid: int) -> None:
        """Index beyond nominal capacity *without* splitting (paper §7).

        The leaf's effective fpp then degrades along Equation 14; used by
        the Figure 14 experiments.
        """
        leaf = self._descend_and_read(key)
        if leaf is None:
            raise LookupError("insert into an unbuilt tree; bulk_load first")
        self._leaf_add_unchecked(leaf, key, pid)
        self._charge_cpu(CPU_BLOOM_INSERT)
        self.store.write(leaf.node_id)

    def delete(self, key, pid: int | None = None) -> DeleteOutcome:
        """Delete ``key`` from the index (paper §7).

        With plain filters the key lands on the leaf's deleted list,
        which keeps the fpp from degrading the way in-place bit clearing
        would.  With ``filter_kind="counting"`` and ``pid`` given, the
        counters of the filter covering that page are decremented — a
        true in-place delete with no tombstone growth.

        A counting-filter tree deleted *without* ``pid`` cannot decrement
        safely (the key's page group is unknown) and falls back to the
        tombstone list; the returned :class:`DeleteOutcome` surfaces that
        through ``tombstoned=True``, so Figure-14-style fpp accounting
        can tell the two §7 delete mechanisms apart instead of silently
        mixing them.  The outcome is truthy iff the key was removed.
        """
        leaf = self._descend_and_read(key)
        if leaf is None or not leaf.covers_key(key):
            return DeleteOutcome(removed=False)
        return self._delete_from(leaf, key, pid)

    def _delete_from(self, leaf: BFLeaf, key, pid: int | None,
                     positions=None) -> DeleteOutcome:
        """Shared delete tail (after descent charges and the covers check)."""
        if self.config.filter_kind == "counting" and pid is not None:
            if positions is None:
                positions = leaf.key_positions(key)
            outcome = DeleteOutcome(
                removed=leaf.remove_key_prehashed(pid, positions),
                tombstoned=False,
            )
        else:
            leaf.mark_deleted(key)
            outcome = DeleteOutcome(removed=True, tombstoned=True)
        self.store.write(leaf.node_id)
        return outcome

    def delete_many(self, keys, pids=None,
                    latency_sink: list[float] | None = None
                    ) -> list[DeleteOutcome]:
        """Batch :meth:`delete` — bit-identical outcomes, tree state,
        IOStats and clock charges versus the scalar loop.

        ``pids`` is a parallel sequence of data page ids (entries may be
        None), meaningful for counting-filter trees, where each leaf then
        hashes its key group once instead of k Python hash rounds per
        key.  Deletes never restructure the tree, so one routing pass
        covers the whole batch.  ``latency_sink`` receives per-op
        simulated latencies, as the scalar loop would bracket them.
        """
        keys = [as_scalar(k) for k in keys]
        n = len(keys)
        if pids is None:
            pids = [None] * n
        else:
            pids = [None if p is None else int(p) for p in pids]
        if len(pids) != n:
            raise ValueError("keys and pids must have the same length")
        clock = self._clock()
        track = latency_sink is not None and clock is not None
        latencies = [0.0] * n
        outcomes: list[DeleteOutcome] = [DeleteOutcome(removed=False)] * n
        try:
            fences, leaf_ids, paths = self.inner.routing_table()
        except LookupError:
            # Empty tree: scalar delete reports not-found per key.
            if latency_sink is not None:
                latency_sink.extend(latencies)
            return outcomes
        prehash = self.config.filter_kind == "counting"
        slots = route_batch(fences, keys)
        rows: list = [None] * n
        if prehash:
            by_leaf: dict[int, list[int]] = {}
            for j, s in enumerate(slots):
                if pids[j] is not None:
                    by_leaf.setdefault(leaf_ids[s], []).append(j)
            for leaf_id, js in by_leaf.items():
                positions = self.leaves[leaf_id].hash_batch(
                    [keys[j] for j in js]
                )
                for r, j in enumerate(js):
                    rows[j] = positions[r]
        for j, key in enumerate(keys):
            leaf = self.leaves[leaf_ids[slots[j]]]
            start = clock.now() if track else 0.0
            self._charge_descent(leaf, path=paths[leaf.node_id])
            if leaf.covers_key(key):
                row = rows[j]
                outcomes[j] = self._delete_from(
                    leaf, key, pids[j],
                    positions=row.tolist() if row is not None else None,
                )
            if track:
                latencies[j] = clock.now() - start
        if latency_sink is not None:
            latency_sink.extend(latencies)
        maybe_check(self)
        return outcomes

    def _split_leaf(self, leaf: BFLeaf) -> tuple[BFLeaf, BFLeaf]:
        """Algorithm 2: split ``leaf`` into two, rebuilding its filters.

        The paper enumerates the key domain and probes the old filters; we
        re-scan the leaf's (small) page range instead — the recomputation
        §3 explicitly calls feasible — which yields the exact key/page
        pairs at the cost of one sequential run over the covered pages.
        The split point is the median distinct *live* key: tombstoned
        keys are dropped before the split point is chosen, so a leaf
        whose keys are half-deleted can never produce a side with no live
        keys (``min_key is None``), which would crash subsequent insert
        routing.  Page coverage is still partitioned over *all* scanned
        pairs, so a tombstoned key that is later re-inserted at its
        original data page still lands inside its leaf's page range.
        """
        pairs = self._rescan_leaf(leaf)
        live = [(k, p) for k, p in pairs if k not in leaf.deleted_keys]
        distinct = sorted({key for key, _ in live})
        if len(distinct) < 2:
            raise ValueError(
                "cannot split a leaf holding fewer than two live keys"
            )
        mid = distinct[len(distinct) // 2]
        left_pid = min(p for k, p in pairs if k < mid)
        right_pid = min(p for k, p in pairs if k >= mid)
        # Structural filter seeds: a split's children hash with seeds
        # derived from their covered pages (plus a side bit for the rare
        # straddling-page split), not from freshly allocated node ids —
        # so a shard replaying the same inserts rebuilds bit-identical
        # filters even though its store allocates different ids.
        left = self._new_leaf(min_pid=left_pid, filter_seed=left_pid << 1)
        right = self._new_leaf(min_pid=right_pid,
                               filter_seed=(right_pid << 1) | 1)
        for key, pid in live:
            target = right if key >= mid else left
            self._leaf_add_unchecked(target, key, pid)
        left.deleted_keys = {k for k in leaf.deleted_keys if k < mid}
        right.deleted_keys = {k for k in leaf.deleted_keys if k >= mid}
        self._relink(leaf, left, right)
        self.inner_replace(leaf, left, right, separator=mid)
        self.store.write(left.node_id)
        self.store.write(right.node_id)
        return left, right

    def _rescan_leaf(self, leaf: BFLeaf) -> list[tuple[object, int]]:
        """Distinct (key, pid) pairs in the leaf's page range (charged I/O)."""
        pairs: list[tuple[object, int]] = []
        device = self._data_device
        if device is not None and leaf.pages_covered > 0:
            device.read_run(leaf.min_pid, leaf.pages_covered)
        for pid in range(leaf.min_pid, leaf.min_pid + leaf.pages_covered):
            if pid >= self.relation.npages:
                break
            view = self.relation.view_page(pid)
            for key in np.unique(view.column(self.key_column)):
                pairs.append((key.item(), pid))
        return pairs

    def _relink(self, old: BFLeaf, left: BFLeaf, right: BFLeaf) -> None:
        left.prev_leaf_id = old.prev_leaf_id
        left.next_leaf_id = right.node_id
        right.prev_leaf_id = left.node_id
        right.next_leaf_id = old.next_leaf_id
        if old.next_leaf_id is not None:
            nxt = self.leaves.get(old.next_leaf_id)
            if nxt is not None:
                nxt.prev_leaf_id = right.node_id
        for other in self.leaves.values():
            if other.next_leaf_id == old.node_id and other is not left:
                other.next_leaf_id = left.node_id
        del self.leaves[old.node_id]

    def inner_replace(self, old: BFLeaf, left: BFLeaf, right: BFLeaf,
                      separator) -> None:
        """Swap ``old`` for ``left`` in the directory and add ``right``."""
        if self.inner.root_id is None:
            # Degenerate single-leaf tree.
            self.inner._single_leaf = None
            self.inner.register_single_leaf(left.node_id)
            self.inner.split_child(left.node_id, separator, right.node_id)
            return
        path = self.inner._path_to_child(old.node_id)
        parent = path[-1]
        parent.children[parent.child_index(old.node_id)] = left.node_id
        self.inner.split_child(left.node_id, separator, right.node_id)

    # ==================================================================
    # range scans (paper §7)
    # ==================================================================
    def range_scan(self, lo, hi, enumerate_boundaries: bool = False
                   ) -> RangeScanResult:
        """Scan all tuples with key in [lo, hi].

        Middle partitions (leaves entirely inside the range) are read in
        full — every page is useful.  Boundary partitions are read in full
        too, which is the read overhead Figure 13 quantifies; with
        ``enumerate_boundaries`` the §7 optimization probes the boundary
        leaf's filters for each integer value in the overlapping key range
        and fetches only matching pages (practical only for small integer
        domains).

        I/O charging follows Eq. 13 across the *whole* scan: the leaf
        chain is read with one random positioning then sequentially
        (matching ``BPlusTree.range_scan``), and data pages pay one
        random positioning per disjoint page run — consecutive leaves
        whose page runs are disk-contiguous ride the same sequential
        stream instead of paying a seek per leaf.
        """
        if lo > hi:
            raise ValueError(f"empty range: lo={lo} > hi={hi}")
        try:
            leaf_id, path = self.inner.descend(lo)
        except LookupError:
            return RangeScanResult(matches=0, pages_read=0, leaves_visited=0)
        self._charge_cpu(
            len(path) * math.log2(max(2, self.inner.fanout)) * CPU_KEY_COMPARE
        )
        matches = 0
        pages_read = 0
        leaves_visited = 0
        prev_pid: int | None = None
        device = self._data_device
        current: BFLeaf | None = self.leaves[leaf_id]
        if not self.ordered:
            # Overlapping partitions: earlier leaves may also intersect
            # the range.
            while current.prev_leaf_id is not None:
                prev = self.leaves.get(current.prev_leaf_id)
                if prev is None or prev.max_key is None or prev.max_key < lo:
                    break
                current = prev
        while current is not None:
            if current.min_key is not None and current.min_key > hi:
                break
            self.store.read(current.node_id, sequential=leaves_visited > 0)
            leaves_visited += 1
            pids = self._leaf_scan_pids(current, lo, hi, enumerate_boundaries)
            if pids:
                if device is not None:
                    for pid in pids:
                        device.read_page(
                            pid,
                            sequential=(prev_pid is not None
                                        and pid == prev_pid + 1),
                        )
                        prev_pid = pid
                else:
                    prev_pid = pids[-1]
                pages_read += len(pids)
                matches += self._count_range_matches(pids, lo, hi)
            next_id = current.next_leaf_id
            current = self.leaves.get(next_id) if next_id is not None else None
        return RangeScanResult(matches=matches, pages_read=pages_read,
                               leaves_visited=leaves_visited)

    def range_scan_many(self, windows, enumerate_boundaries: bool = False,
                        latency_sink: list[float] | None = None
                        ) -> list[RangeScanResult]:
        """Vectorized §7 range scans over a batch of ``(lo, hi)`` windows.

        Returns exactly ``[self.range_scan(lo, hi) for lo, hi in
        windows]`` — the same per-scan :class:`RangeScanResult`, the same
        IOStats counters and the same simulated clock charges (equal up
        to float summation order) — but the per-page Python work
        collapses:

        * every window is routed in one pass over the flattened
          directory (:meth:`InnerTree.routing_table`), as the batch
          write engine does, skipping the per-scan directory walk;
        * each scan's data-page runs are charged through
          :meth:`Device.read_batch` — one aggregate advance per leaf
          visit with the exact Eq. 13 random/sequential split the scalar
          per-page loop produces;
        * boundary-leaf filter enumeration (``enumerate_boundaries``)
          probes all overlapping key values through the shared-hash
          batch machinery (:meth:`BFLeaf.matching_page_runs_many`);
        * match counting is deferred and vectorized: all scans covering
          a page are counted in one NumPy pass over that page's column
          (one global ``searchsorted`` for ordered data).

        Scans never mutate the tree and every charge on the scan path
        declares its access pattern explicitly, so per-scan charges are
        independent of processing order; ``latency_sink`` receives one
        simulated per-scan latency per window (aligned with
        ``windows``), exactly as the scalar loop would bracket them.
        Invalid windows (``lo > hi``) are rejected up front, before any
        charges land.
        """
        wins = normalize_scan_windows(windows)
        n = len(wins)
        results = [
            RangeScanResult(matches=0, pages_read=0, leaves_visited=0)
            for _ in range(n)
        ]
        clock = self._clock()
        track = latency_sink is not None and clock is not None
        latencies = [0.0] * n
        try:
            fences, leaf_ids, paths = self.inner.routing_table()
        except LookupError:
            if latency_sink is not None:
                latency_sink.extend(latencies)
            return results
        slots = route_batch(fences, [lo for lo, _ in wins])
        device = self._data_device
        # Deferred match counting: (scan, first_pid, npages) jobs, one
        # row per charged page run, counted vectorized after the sweep.
        jobs_scan: list[int] = []
        jobs_first: list[int] = []
        jobs_count: list[int] = []
        for j in range(n):
            lo, hi = wins[j]
            res = results[j]
            start_t = clock.now() if track else 0.0
            leaf_id = leaf_ids[slots[j]]
            path = paths[leaf_id]
            for node_id in path:
                self.store.read(node_id)
            self._charge_cpu(
                len(path) * math.log2(max(2, self.inner.fanout))
                * CPU_KEY_COMPARE
            )
            current: BFLeaf | None = self.leaves[leaf_id]
            if not self.ordered:
                while current.prev_leaf_id is not None:
                    prev = self.leaves.get(current.prev_leaf_id)
                    if (prev is None or prev.max_key is None
                            or prev.max_key < lo):
                        break
                    current = prev
            prev_pid: int | None = None
            while current is not None:
                if current.min_key is not None and current.min_key > hi:
                    break
                self.store.read(current.node_id,
                                sequential=res.leaves_visited > 0)
                res.leaves_visited += 1
                runs = self._leaf_scan_runs(current, lo, hi,
                                            enumerate_boundaries)
                if runs:
                    n_random, n_seq, prev_pid = classify_read_runs(
                        runs, prev_pid
                    )
                    if device is not None:
                        device.read_batch(n_random, n_seq,
                                          last_page=prev_pid)
                    res.pages_read += n_random + n_seq
                    for first, cnt in runs:
                        jobs_scan.append(j)
                        jobs_first.append(first)
                        jobs_count.append(cnt)
                next_id = current.next_leaf_id
                current = (self.leaves.get(next_id)
                           if next_id is not None else None)
            if track:
                latencies[j] = clock.now() - start_t
        self._count_scan_jobs(wins, results, jobs_scan, jobs_first,
                              jobs_count)
        if latency_sink is not None:
            latency_sink.extend(latencies)
        return results

    def _leaf_scan_runs(self, leaf: BFLeaf, lo, hi,
                        enumerate_boundaries: bool
                        ) -> list[tuple[int, int]]:
        """Run-compressed :meth:`_leaf_scan_pids` for the batch scan path.

        Returns ``(first_pid, npages)`` runs covering exactly the pids
        the scalar helper lists, with the boundary-enumeration filter
        probes batched (per-value charges aggregated into one IOStats
        bump and one CPU advance — same integers, float clock total
        equal up to summation order).
        """
        if leaf.min_key is None or leaf.max_key is None:
            return []
        if leaf.max_key < lo or leaf.min_key > hi:
            return []
        is_boundary = leaf.min_key < lo or leaf.max_key > hi
        full = ([(leaf.min_pid, leaf.pages_covered)]
                if leaf.pages_covered > 0 else [])
        if not is_boundary or not enumerate_boundaries:
            return full
        start = max(lo, leaf.min_key)
        stop = min(hi, leaf.max_key)
        if not isinstance(start, (int, np.integer)) or stop - start > 100_000:
            return full  # impractical domain; fall back to full read
        values = list(range(int(start), int(stop) + 1))
        stats = self._stats()
        if stats is not None:
            stats.bloom_probes += leaf.nfilters * len(values)
        self._charge_cpu(len(values) * leaf.nfilters * CPU_BLOOM_PROBE)
        wanted: set[int] = set()
        for runs in leaf.matching_page_runs_many(values):
            for first, npages in runs:
                wanted.update(range(first, first + npages))
        out: list[tuple[int, int]] = []
        for pid in sorted(wanted):
            if out and out[-1][0] + out[-1][1] == pid:
                out[-1] = (out[-1][0], out[-1][1] + 1)
            else:
                out.append((pid, 1))
        return out

    def _count_scan_jobs(self, wins, results, jobs_scan, jobs_first,
                         jobs_count) -> None:
        """Vectorized deferred match counting for :meth:`range_scan_many`.

        Ordered data: one global ``searchsorted`` pair over the sorted
        column resolves every job's count arithmetically.  Partitioned
        data: jobs are grouped by page and all scans covering a page are
        counted in one vectorized pass over that page's column.  Both
        produce the exact integers ``_count_range_matches`` would.
        """
        if not jobs_scan:
            return
        rel = self.relation
        tpp = rel.tuples_per_page
        matches = np.zeros(len(results), dtype=np.int64)
        scan_arr = np.asarray(jobs_scan, dtype=np.int64)
        first_arr = np.asarray(jobs_first, dtype=np.int64)
        count_arr = np.asarray(jobs_count, dtype=np.int64)
        if self.ordered:
            col = np.asarray(rel.columns[self.key_column])
            lo_idx = np.searchsorted(
                col, np.asarray([wins[j][0] for j in jobs_scan]), side="left"
            )
            hi_idx = np.searchsorted(
                col, np.asarray([wins[j][1] for j in jobs_scan]), side="right"
            )
            start_tid = first_arr * tpp
            end_tid = np.minimum((first_arr + count_arr) * tpp, rel.ntuples)
            counts = np.maximum(
                0,
                np.minimum(hi_idx, end_tid) - np.maximum(lo_idx, start_tid),
            )
            np.add.at(matches, scan_arr, counts)
        else:
            by_pid: dict[int, list[int]] = {}
            for row in range(len(scan_arr)):
                first = int(first_arr[row])
                for pid in range(first, first + int(count_arr[row])):
                    if pid < rel.npages:
                        by_pid.setdefault(pid, []).append(row)
            for pid, rows in by_pid.items():
                v = rel.view_page(pid).column(self.key_column)
                lo_arr = np.asarray([wins[jobs_scan[r]][0] for r in rows])
                hi_arr = np.asarray([wins[jobs_scan[r]][1] for r in rows])
                counts = (
                    (v >= lo_arr[:, None]) & (v <= hi_arr[:, None])
                ).sum(axis=1)
                np.add.at(matches, scan_arr[rows], counts)
        for j, res in enumerate(results):
            res.matches += int(matches[j])

    def _leaf_scan_pids(self, leaf: BFLeaf, lo, hi,
                        enumerate_boundaries: bool) -> list[int]:
        if leaf.min_key is None or leaf.max_key is None:
            return []
        if leaf.max_key < lo or leaf.min_key > hi:
            return []
        is_boundary = leaf.min_key < lo or leaf.max_key > hi
        all_pids = list(range(leaf.min_pid, leaf.min_pid + leaf.pages_covered))
        if not is_boundary or not enumerate_boundaries:
            return all_pids
        # §7 optimization: enumerate the overlapping values and probe BFs.
        start = max(lo, leaf.min_key)
        stop = min(hi, leaf.max_key)
        if not isinstance(start, (int, np.integer)) or stop - start > 100_000:
            return all_pids  # impractical domain; fall back to full read
        wanted: set[int] = set()
        stats = self._stats()
        for value in range(int(start), int(stop) + 1):
            if stats is not None:
                stats.bloom_probes += leaf.nfilters
            self._charge_cpu(leaf.nfilters * CPU_BLOOM_PROBE)
            for first, npages in leaf.matching_page_runs(value):
                wanted.update(range(first, first + npages))
        return sorted(wanted)

    def _count_range_matches(self, pids: list[int], lo, hi) -> int:
        matches = 0
        for pid in pids:
            if pid >= self.relation.npages:
                continue
            values = self.relation.view_page(pid).column(self.key_column)
            matches += int(np.count_nonzero((values >= lo) & (values <= hi)))
        return matches

    # ==================================================================
    # index intersection (paper §8)
    # ==================================================================
    def intersect_probe(self, other: "BFTree", key_self, key_other
                        ) -> SearchResult:
        """Probe two BF-Trees over the same relation and intersect pages.

        The combined false-positive probability is the product of the two
        trees' fpps (paper §8), so only pages matching in *both* indexes
        are fetched.
        """
        if other.relation is not self.relation:
            raise ValueError("intersection requires indexes on one relation")
        pages_a = self._candidate_pages(key_self)
        pages_b = other._candidate_pages(key_other)
        candidates = sorted(pages_a & pages_b)
        result = SearchResult(found=False)
        device = self._data_device
        for i, pid in enumerate(candidates):
            if device is not None:
                device.read_page(pid, sequential=i > 0)
            result.pages_read += 1
            view = self.relation.view_page(pid)
            mask = (view.column(self.key_column) == key_self) & (
                view.column(other.key_column) == key_other
            )
            hits = int(np.count_nonzero(mask))
            if hits == 0:
                result.false_pages += 1
                stats = self._stats()
                if stats is not None:
                    stats.false_reads += 1
            result.matches += hits
        result.found = result.matches > 0
        return result

    def _candidate_pages(self, key) -> set[int]:
        """All data pages this tree's filters nominate for ``key``."""
        leaf = self._descend_and_read(key)
        pages: set[int] = set()
        if leaf is None:
            return pages
        stats = self._stats()
        for candidate in self._candidate_leaves(key, leaf):
            if not candidate.covers_key(key):
                continue
            if stats is not None:
                stats.bloom_probes += candidate.nfilters
            self._charge_cpu(candidate.nfilters * CPU_BLOOM_PROBE)
            for first, npages in candidate.matching_page_runs(key):
                pages.update(range(first, first + npages))
        return pages

    # ==================================================================
    # size accounting
    # ==================================================================
    def _leaf_index_pages(self, leaf: BFLeaf) -> int:
        """Index pages one leaf occupies (1 unless a key overflowed it)."""
        assert self.geometry is not None
        base = self.geometry.max_filters
        return max(1, -(-leaf.nfilters // base))

    @property
    def n_leaves(self) -> int:
        return len(self.leaves)

    @property
    def size_pages(self) -> int:
        """Total index pages: leaves (with overflow) + internal nodes."""
        leaf_pages = sum(self._leaf_index_pages(l) for l in self.leaves.values())
        return leaf_pages + self.inner.n_internal_nodes

    @property
    def size_bytes(self) -> int:
        return self.size_pages * self.config.page_size

    @property
    def height(self) -> int:
        """Levels including the leaf level (Eq. 7 semantics)."""
        return self.inner.height

    def effective_fpp(self) -> float:
        """Size-weighted effective fpp across leaves (degrades per Eq. 14)."""
        total = sum(l.nkeys for l in self.leaves.values())
        if total == 0:
            return 0.0
        return sum(l.effective_fpp() * l.nkeys for l in self.leaves.values()) / total

    def leaves_in_order(self) -> list[BFLeaf]:
        """Leaves left-to-right following next pointers."""
        by_id = self.leaves
        targets = {l.next_leaf_id for l in by_id.values() if l.next_leaf_id is not None}
        heads = [l for lid, l in by_id.items() if lid not in targets]
        if not heads:
            return []
        head = min(heads, key=lambda l: l.min_pid)
        chain = [head]
        while chain[-1].next_leaf_id is not None:
            chain.append(by_id[chain[-1].next_leaf_id])
        return chain

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"BFTree(column={self.key_column!r}, fpp={self.config.fpp}, "
            f"leaves={self.n_leaves}, height={self.height}, "
            f"pages={self.size_pages})"
        )
