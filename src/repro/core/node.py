"""Shared tree machinery: node storage and B+-Tree-style internal levels.

The paper keeps the root and internal nodes of a BF-Tree identical to a
B+-Tree's ("the code-base of the B+-Tree with minor modifications serves
as the part of the BF-Tree above the leaves").  We mirror that: both our
BF-Tree and our baseline B+-Tree place their upper levels in the classes
here.

* :class:`NodeStore` maps node ids 1:1 to index pages and charges the
  index device (through an optional :class:`BufferPool`) on every node
  access.  The warm-cache experiments prefault internal nodes into the
  pool so only leaf reads cost I/O.
* :class:`InternalNode` is a <key, child-pointer> page with the fanout of
  Equation 2 (``pagesize / (ptrsize + keysize)``).
* :class:`InnerTree` owns the internal levels: bulk build over leaf
  separators, point descent, and separator insertion with node splits.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np

from repro.storage.buffer_pool import BufferPool
from repro.storage.device import PAGE_SIZE, Device

DEFAULT_KEY_SIZE = 8
DEFAULT_PTR_SIZE = 8


def fanout_for(key_size: int = DEFAULT_KEY_SIZE, ptr_size: int = DEFAULT_PTR_SIZE,
               page_size: int = PAGE_SIZE) -> int:
    """Equation 2: internal-node fanout = pagesize / (ptrsize + keysize)."""
    fanout = page_size // (ptr_size + key_size)
    if fanout < 2:
        raise ValueError("page too small for a fanout of 2")
    return fanout


def route_batch(fences: list, keys) -> list[int]:
    """Rightmost-biased slot routing of a key batch over sorted fences.

    Slot ``j`` equals ``bisect_right(fences, keys[j])`` — the flattened
    form of :meth:`InternalNode.child_for`'s per-level descent, matching
    :meth:`InnerTree.routing_table`'s contract — computed with one
    vectorized ``searchsorted`` for numeric key batches.  Every batch
    engine (writes, deletes, scans) routes through this.
    """
    n = len(keys)
    if not fences or not n:
        return [0] * n
    arr = np.asarray(keys)
    if arr.dtype.kind in "iufb":
        return np.searchsorted(np.asarray(fences), arr,
                               side="right").tolist()
    return [bisect.bisect_right(fences, k) for k in keys]


class NodeStore:
    """Allocates node ids (= index page ids) and charges node accesses.

    ``device`` may be ``None`` for purely in-memory unit tests; in that
    case accesses are free.
    """

    def __init__(self, device: Device | None = None,
                 pool: BufferPool | None = None) -> None:
        self.device = device
        self.pool = pool
        self._next_id = 0

    def allocate(self) -> int:
        node_id = self._next_id
        self._next_id += 1
        return node_id

    @property
    def npages(self) -> int:
        """Index pages allocated so far."""
        return self._next_id

    def read(self, node_id: int, sequential: bool = False) -> None:
        """Charge the cost of fetching node ``node_id`` from the index device."""
        if self.pool is not None:
            self.pool.read_page(node_id, sequential=sequential)
        elif self.device is not None:
            self.device.read_page(node_id, sequential=sequential)

    def write(self, node_id: int, sequential: bool = False) -> None:
        """Charge the cost of writing node ``node_id`` back."""
        if self.device is not None:
            self.device.write_page(node_id, sequential=sequential)
        if self.pool is not None:
            self.pool.invalidate(node_id)


@dataclass
class InternalNode:
    """A <separator keys, child ids> page.

    ``children[i]`` subtends keys < ``keys[i]``; ``children[-1]`` subtends
    keys >= ``keys[-1]``.  Thus ``len(children) == len(keys) + 1``.
    """

    node_id: int
    keys: list = field(default_factory=list)
    children: list[int] = field(default_factory=list)
    level: int = 1  # 1 = just above the leaves

    def child_for(self, key) -> int:
        """Child id to descend into for ``key`` (rightmost-biased)."""
        lo, hi = 0, len(self.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if key < self.keys[mid]:
                hi = mid
            else:
                lo = mid + 1
        return self.children[lo]

    def child_index(self, child_id: int) -> int:
        return self.children.index(child_id)

    @property
    def nkeys(self) -> int:
        return len(self.keys)


class InnerTree:
    """Internal levels of a paged tree (everything above the leaves).

    The leaf level is owned by the concrete index (BF-Tree or B+-Tree);
    this class routes keys to leaf ids and keeps the directory balanced
    under splits.
    """

    def __init__(self, store: NodeStore, fanout: int | None = None) -> None:
        self.store = store
        self.fanout = fanout if fanout is not None else fanout_for()
        self.nodes: dict[int, InternalNode] = {}
        self.root_id: int | None = None
        self._single_leaf: int | None = None  # degenerate tree of one leaf

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_internal_nodes(self) -> int:
        return len(self.nodes)

    @property
    def height(self) -> int:
        """Levels including the leaf level (paper's Eq. 4 / Eq. 7 meaning)."""
        if self.root_id is None:
            return 1
        return self.nodes[self.root_id].level + 1

    # ------------------------------------------------------------------
    # bulk build
    # ------------------------------------------------------------------
    def build(self, separators: list, leaf_ids: list[int]) -> None:
        """Build the directory over a sorted leaf level.

        ``separators[i]`` is the smallest key of ``leaf_ids[i + 1]`` — the
        standard B+-Tree bulk-load fence layout, so ``len(separators) ==
        len(leaf_ids) - 1``.
        """
        if len(separators) != len(leaf_ids) - 1:
            raise ValueError("need exactly len(leaf_ids) - 1 separators")
        self.nodes.clear()
        self.root_id = None
        self._single_leaf = None
        if len(leaf_ids) == 1:
            self._single_leaf = leaf_ids[0]
            return
        level = 1
        child_ids = list(leaf_ids)
        fences = list(separators)
        while True:
            nodes, fences = self._build_level(child_ids, fences, level)
            child_ids = [node.node_id for node in nodes]
            if len(nodes) == 1:
                self.root_id = nodes[0].node_id
                return
            level += 1

    def _build_level(
        self, child_ids: list[int], fences: list, level: int
    ) -> tuple[list[InternalNode], list]:
        """Pack one level of internal nodes over ``child_ids``."""
        nodes: list[InternalNode] = []
        upper_fences: list = []
        i = 0
        n = len(child_ids)
        while i < n:
            take = min(self.fanout, n - i)
            # Avoid leaving a dangling single child in the final node.
            if 0 < n - i - take == 1:
                take -= 1
            node = InternalNode(
                node_id=self.store.allocate(),
                keys=fences[i : i + take - 1],
                children=child_ids[i : i + take],
                level=level,
            )
            self.nodes[node.node_id] = node
            nodes.append(node)
            if i + take < n:
                upper_fences.append(fences[i + take - 1])
            i += take
        return nodes, upper_fences

    # ------------------------------------------------------------------
    # descent
    # ------------------------------------------------------------------
    def descend(self, key, charge_io: bool = True) -> tuple[int, list[int]]:
        """Route ``key`` to a leaf id; return (leaf_id, internal path ids).

        Charges one node read per internal level when ``charge_io``.
        """
        if self.root_id is None:
            if self._single_leaf is None:
                raise LookupError("empty tree")
            return self._single_leaf, []
        path: list[int] = []
        node = self.nodes[self.root_id]
        while True:
            if charge_io:
                self.store.read(node.node_id)
            path.append(node.node_id)
            child = node.child_for(key)
            if node.level == 1:
                return child, path
            node = self.nodes[child]

    def routing_table(self) -> tuple[list, list[int], dict[int, list[int]]]:
        """Flattened descent: ``(fences, leaf_ids, paths)``.

        ``descend(key)`` lands on ``leaf_ids[bisect_right(fences, key)]``
        through internal path ``paths[leaf_id]`` — the same rightmost-
        biased routing :meth:`InternalNode.child_for` performs, with the
        per-level binary searches collapsed into one sorted fence list.
        The batch write path uses this to route a whole key batch in one
        vectorized pass (and to replay each key's descent I/O charges
        without re-walking the tree).  The table is a snapshot: any
        structural change (a split) invalidates it.

        Raises ``LookupError`` on an empty tree, like :meth:`descend`.
        """
        if self.root_id is None:
            if self._single_leaf is None:
                raise LookupError("empty tree")
            return [], [self._single_leaf], {self._single_leaf: []}
        fences: list = []
        leaf_ids: list[int] = []
        paths: dict[int, list[int]] = {}

        def walk(node_id: int, path: list[int]) -> None:
            node = self.nodes[node_id]
            path = path + [node_id]
            for i, child in enumerate(node.children):
                if i > 0:
                    fences.append(node.keys[i - 1])
                if node.level == 1:
                    leaf_ids.append(child)
                    paths[child] = path
                else:
                    walk(child, path)

        walk(self.root_id, [])
        return fences, leaf_ids, paths

    def iter_leaf_ids(self) -> list[int]:
        """All leaf ids left-to-right (no I/O charged; structural walk)."""
        if self.root_id is None:
            return [] if self._single_leaf is None else [self._single_leaf]
        result: list[int] = []
        stack = [self.root_id]
        # DFS preserving order: expand children right-to-left onto the stack.
        while stack:
            node_id = stack.pop()
            node = self.nodes.get(node_id)
            if node is None or node.level < 1:
                result.append(node_id)
                continue
            if node.level == 1:
                result.extend(node.children)
            else:
                stack.extend(reversed(node.children))
        return result

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def register_single_leaf(self, leaf_id: int) -> None:
        """Initialize a brand-new tree whose only node is one leaf."""
        if self.root_id is not None or self._single_leaf is not None:
            raise ValueError("tree is not empty")
        self._single_leaf = leaf_id

    def split_child(self, old_leaf: int, separator, new_leaf: int) -> None:
        """Record that ``old_leaf`` split; ``new_leaf`` holds keys >= separator."""
        if self.root_id is None:
            if self._single_leaf != old_leaf:
                raise ValueError("unknown leaf in degenerate tree")
            root = InternalNode(
                node_id=self.store.allocate(),
                keys=[separator],
                children=[old_leaf, new_leaf],
                level=1,
            )
            self.nodes[root.node_id] = root
            self.root_id = root.node_id
            self._single_leaf = None
            return
        path = self._path_to_child(old_leaf)
        parent = path[-1]
        idx = parent.child_index(old_leaf)
        parent.keys.insert(idx, separator)
        parent.children.insert(idx + 1, new_leaf)
        self.store.write(parent.node_id)
        self._split_up(path)

    def _path_to_child(self, leaf_id: int) -> list[InternalNode]:
        """Internal path (root..parent) leading to ``leaf_id`` (structural)."""
        assert self.root_id is not None
        node = self.nodes[self.root_id]
        path = [node]
        while node.level > 1:
            # Structural search: find the child subtree containing leaf_id.
            for child in node.children:
                subtree = self.nodes[child]
                if self._subtree_contains(subtree, leaf_id):
                    node = subtree
                    path.append(node)
                    break
            else:
                raise LookupError(f"leaf {leaf_id} not found")
        if leaf_id not in node.children:
            raise LookupError(f"leaf {leaf_id} not under expected parent")
        return path

    def _subtree_contains(self, node: InternalNode, leaf_id: int) -> bool:
        if node.level == 1:
            return leaf_id in node.children
        return any(
            self._subtree_contains(self.nodes[c], leaf_id) for c in node.children
        )

    def _split_up(self, path: list[InternalNode]) -> None:
        """Split any overfull internal nodes on ``path``, bottom-up."""
        for depth in range(len(path) - 1, -1, -1):
            node = path[depth]
            if len(node.children) <= self.fanout:
                return
            mid = len(node.children) // 2
            promoted = node.keys[mid - 1]
            right = InternalNode(
                node_id=self.store.allocate(),
                keys=node.keys[mid:],
                children=node.children[mid:],
                level=node.level,
            )
            node.keys = node.keys[: mid - 1]
            node.children = node.children[:mid]
            self.nodes[right.node_id] = right
            self.store.write(node.node_id)
            self.store.write(right.node_id)
            if depth == 0:
                new_root = InternalNode(
                    node_id=self.store.allocate(),
                    keys=[promoted],
                    children=[node.node_id, right.node_id],
                    level=node.level + 1,
                )
                self.nodes[new_root.node_id] = new_root
                self.root_id = new_root.node_id
                self.store.write(new_root.node_id)
                return
            parent = path[depth - 1]
            idx = parent.child_index(node.node_id)
            parent.keys.insert(idx, promoted)
            parent.children.insert(idx + 1, right.node_id)

    def internal_node_ids(self) -> list[int]:
        """Ids of all internal nodes (for warm-cache prefaulting)."""
        return list(self.nodes)

    # ------------------------------------------------------------------
    # checkpoint serialization (repro.persist)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Directory state for a checkpoint: nodes, root, allocator cursor.

        Serializing the directory verbatim (instead of re-running the
        bulk build on restore) keeps node ids — and therefore every
        simulated index-page charge — bit-identical across a
        checkpoint/restore cycle.
        """
        return {
            "fanout": self.fanout,
            "root_id": self.root_id,
            "single_leaf": self._single_leaf,
            "next_id": self.store._next_id,
            "nodes": [
                {
                    "node_id": node.node_id,
                    "keys": list(node.keys),
                    "children": list(node.children),
                    "level": node.level,
                }
                for node in self.nodes.values()
            ],
        }

    def load_state(self, state: dict) -> None:
        """Restore the directory captured by :meth:`state_dict`.

        Keeps the existing :class:`NodeStore` (and with it any live
        device/pool binding); only the allocator cursor is overwritten.
        """
        self.fanout = int(state["fanout"])
        self.nodes.clear()
        for rec in state["nodes"]:
            node = InternalNode(
                node_id=int(rec["node_id"]),
                keys=list(rec["keys"]),
                children=[int(c) for c in rec["children"]],
                level=int(rec["level"]),
            )
            self.nodes[node.node_id] = node
        root = state["root_id"]
        self.root_id = None if root is None else int(root)
        single = state["single_leaf"]
        self._single_leaf = None if single is None else int(single)
        self.store._next_id = int(state["next_id"])
