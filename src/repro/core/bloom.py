"""Bloom filters and the sizing math of the paper's Section 3.

The paper builds on one identity (its Equation 1, assuming an optimal
number of hash functions)::

    n = -m * ln^2(2) / ln(p)

relating filter size ``m`` (bits), capacity ``n`` (elements) and false
positive probability ``p``.  Two properties follow (paper §3):

1. **Split property** — a filter of M bits for N elements at fpp p can be
   split into S filters of M/S bits for N/S elements each, at the same p.
   This is what lets a BF-leaf dedicate one small filter per data page.
2. Halving p costs only logarithmically many extra bits per element.

:class:`BloomFilter` is the runtime structure (bit array + k double-hashed
probes); the module-level functions are the analytical counterparts used
by the model in :mod:`repro.model.equations`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.hashing import (
    bloom_positions,
    bloom_positions_batch,
    key_to_int,
    keys_to_int_array,
)

LN2 = math.log(2.0)
LN2_SQ = LN2 * LN2

DEFAULT_HASH_COUNT = 3
"""The paper's experiments fix k = 3 hash functions (Section 6.1)."""


# ----------------------------------------------------------------------
# Analytical relations (Equation 1 and friends)
# ----------------------------------------------------------------------
def capacity_for_bits(nbits: int | float, fpp: float) -> float:
    """Equation 1: elements indexable by ``nbits`` bits at ``fpp``."""
    _check_fpp(fpp)
    return -nbits * LN2_SQ / math.log(fpp)

def bits_for_capacity(nkeys: int | float, fpp: float) -> float:
    """Inverse of Equation 1: bits needed for ``nkeys`` elements at ``fpp``."""
    _check_fpp(fpp)
    if nkeys < 0:
        raise ValueError("nkeys must be non-negative")
    return -nkeys * math.log(fpp) / LN2_SQ

def optimal_hash_count(nbits: int | float, nkeys: int | float) -> int:
    """Optimal k = (m/n) ln 2, at least 1."""
    if nkeys <= 0:
        return 1
    return max(1, round((nbits / nkeys) * LN2))

def expected_fpp(nbits: int | float, nkeys: int | float, k: int) -> float:
    """Expected false-positive rate of an m-bit filter with n keys, k hashes.

    Uses the standard (1 - e^{-kn/m})^k approximation.
    """
    if nbits <= 0:
        return 1.0
    if nkeys <= 0:
        return 0.0
    return (1.0 - math.exp(-k * nkeys / nbits)) ** k

def fpp_after_inserts(fpp: float, insert_ratio: float) -> float:
    """Equation 14: fpp after growing a full filter by ``insert_ratio``.

    ``new_fpp = fpp ** (1 / (1 + insert_ratio))``.  Holds independently of
    filter size and element count (paper §7).
    """
    _check_fpp(fpp)
    if insert_ratio < 0:
        raise ValueError("insert_ratio must be non-negative")
    return fpp ** (1.0 / (1.0 + insert_ratio))

def fpp_after_deletes(fpp: float, delete_ratio: float) -> float:
    """Paper §7: deleting a fraction d of entries adds d to the fpp."""
    _check_fpp(fpp)
    if not 0 <= delete_ratio <= 1:
        raise ValueError("delete_ratio must be in [0, 1]")
    return min(1.0, fpp + delete_ratio)

def _check_fpp(fpp: float) -> None:
    if not 0.0 < fpp < 1.0:
        raise ValueError(f"fpp must be in (0, 1), got {fpp}")


# ----------------------------------------------------------------------
# Runtime structure
# ----------------------------------------------------------------------
_BIT = np.uint64(1) << np.arange(64, dtype=np.uint64)
"""Lookup of single-bit uint64 masks, indexed by bit offset within a word."""


class BloomFilter:
    """A fixed-size Bloom filter over integer-canonicalized keys.

    The bit array is a NumPy ``uint64`` word array (bit ``i`` of the
    filter is bit ``i % 64`` of word ``i // 64``), which keeps the scalar
    probe path cheap while letting :meth:`might_contain_many` test a whole
    probe batch against the filter in one vectorized gather — the engine
    behind ``BFTree.search_many``.
    """

    __slots__ = ("nbits", "k", "seed", "_words", "count")

    def __init__(self, nbits: int, k: int = DEFAULT_HASH_COUNT, seed: int = 0) -> None:
        if nbits <= 0:
            raise ValueError("nbits must be positive")
        if k <= 0:
            raise ValueError("k must be positive")
        self.nbits = nbits
        self.k = k
        self.seed = seed
        self._words = np.zeros((nbits + 63) // 64, dtype=np.uint64)
        self.count = 0  # elements added (with multiplicity of distinct adds)

    @property
    def _bits(self) -> int:
        """The bit array as one big-int (bit ``i`` set = position ``i`` hit).

        Diagnostic view of the word array; comparisons through it are
        layout-independent, which the equality tests rely on.
        """
        return int.from_bytes(self._words.tobytes(), "little")

    @classmethod
    def for_capacity(
        cls, nkeys: int, fpp: float, k: int = DEFAULT_HASH_COUNT, seed: int = 0
    ) -> "BloomFilter":
        """Size a filter for ``nkeys`` elements at target ``fpp`` (Eq. 1)."""
        nbits = max(1, math.ceil(bits_for_capacity(max(nkeys, 1), fpp)))
        return cls(nbits=nbits, k=k, seed=seed)

    # ------------------------------------------------------------------
    def add(self, key: object) -> None:
        """Insert ``key`` (no-op on the bit level if all bits already set)."""
        self.add_positions(
            bloom_positions(key_to_int(key), self.k, self.nbits, self.seed)
        )

    def add_positions(self, positions) -> None:
        """Insert one key given its precomputed k bit positions.

        The scatter half of :meth:`add`: a BF-leaf that adds a key batch
        to several same-geometry filters hashes the batch once
        (:func:`~repro.core.hashing.bloom_positions_batch`) and feeds each
        filter only the rows it owns.
        """
        words = self._words
        for pos in positions:
            words[pos >> 6] |= _BIT[pos & 63]
        self.count += 1

    def contains_positions(self, positions) -> bool:
        """Membership test of one key's precomputed k bit positions."""
        words = self._words
        for pos in positions:
            if not (int(words[pos >> 6]) >> (pos & 63)) & 1:
                return False
        return True

    def bulk_add(self, keys) -> None:
        """Insert a NumPy array of integer keys in one vectorized pass.

        Bit-for-bit identical to adding each key with :meth:`add`; used by
        bulk loading, where per-key Python overhead dominates build time.
        """
        keys = np.asarray(keys)
        if len(keys) == 0:
            return
        positions = bloom_positions_batch(keys, self.k, self.nbits, self.seed)
        flat = positions.ravel()
        np.bitwise_or.at(self._words, flat >> 6, _BIT[flat & 63])
        self.count += len(keys)

    def add_many(self, keys) -> None:
        """Vectorized :meth:`add` of a batch of arbitrary keys.

        Canonicalizes the batch (:func:`keys_to_int_array`), hashes it in
        one pass and scatters all bits with NumPy; bit-for-bit identical
        to a scalar :meth:`add` loop over the same keys.
        """
        if len(keys) == 0:
            return
        self.bulk_add(keys_to_int_array(keys))

    def might_contain(self, key: object) -> bool:
        """Membership test: False is definite, True may be a false positive."""
        return self.contains_positions(
            bloom_positions(key_to_int(key), self.k, self.nbits, self.seed)
        )

    __contains__ = might_contain

    def might_contain_many(self, keys) -> np.ndarray:
        """Vectorized :meth:`might_contain` for a batch of keys.

        Returns a boolean array of ``len(keys)``; entry ``j`` equals
        ``might_contain(keys[j])`` exactly (same double-hashed positions,
        computed by :func:`~repro.core.hashing.bloom_positions_batch`
        over the canonicalized uint64 form of each key).
        """
        if len(keys) == 0:
            return np.zeros(0, dtype=bool)
        keys = keys_to_int_array(keys)
        positions = bloom_positions_batch(keys, self.k, self.nbits, self.seed)
        return self.test_positions(positions)

    def test_positions(self, positions: np.ndarray) -> np.ndarray:
        """Membership of precomputed ``(n, k)`` bit positions (one row per key).

        Lets a caller that probes many same-geometry filters (a BF-leaf,
        whose S filters share nbits/k/seed) hash the key batch once and
        test the resulting positions against every filter.
        """
        words = self._words[positions >> 6]
        bits = (words >> (positions & 63).astype(np.uint64)) & np.uint64(1)
        return bits.all(axis=1)

    @staticmethod
    def test_positions_stacked(filters: "list[BloomFilter]",
                               positions: np.ndarray) -> np.ndarray:
        """Test ``(n, k)`` bit positions against S same-geometry filters
        in one stacked gather.

        Returns an ``(n, S)`` boolean matrix whose column ``i`` equals
        ``filters[i].test_positions(positions)`` exactly — the filters'
        bitset words are stacked and every (key, filter) pair is read in
        a fancy-index pass, keeping the word-layout knowledge (64-bit
        words, ``pos >> 6`` / ``pos & 63`` packing) in this module.  The
        key batch is processed in chunks bounding the ``(S, chunk, k)``
        gather to ~64 MB, so a huge batch (a boundary-enumerating range
        scan can probe 100k values) cannot blow up peak memory; normal
        probe batches fit one chunk.  The BF-leaf's batch probe engine
        runs on this.
        """
        n, k = positions.shape
        s = len(filters)
        words = np.stack([f._words for f in filters])
        out = np.empty((n, s), dtype=bool)
        step = max(1, (1 << 23) // max(1, s * k))
        for start in range(0, n, step):
            chunk = positions[start : start + step]
            gathered = words[:, chunk >> 6]              # (S, chunk, k)
            bits = (gathered >> (chunk & 63).astype(np.uint64)) \
                & np.uint64(1)
            out[start : start + step] = bits.all(axis=2).T
        return out

    # ------------------------------------------------------------------
    def bits_set(self) -> int:
        """Number of 1-bits in the array (diagnostics; not a hot path)."""
        return self._bits.bit_count()

    def fill_fraction(self) -> float:
        """Fraction of bits set; drives the effective false-positive rate."""
        return self.bits_set() / self.nbits

    def effective_fpp(self) -> float:
        """Current false-positive probability given the observed fill.

        A probe false-positives iff all k probed bits are set, so the rate
        is ``fill_fraction ** k`` under the usual independence assumption.
        """
        return self.fill_fraction() ** self.k

    def expected_fpp(self) -> float:
        """Model-predicted fpp for the number of keys added so far."""
        return expected_fpp(self.nbits, self.count, self.k)

    def clear(self) -> None:
        """Reset to an empty filter."""
        self._words[:] = 0
        self.count = 0

    # ------------------------------------------------------------------
    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Bitwise union of two filters with identical geometry.

        The union answers membership for the union of the key sets (at a
        higher fpp).  Used when merging sibling BF-leaves.
        """
        self._check_compatible(other)
        merged = BloomFilter(self.nbits, self.k, self.seed)
        np.bitwise_or(self._words, other._words, out=merged._words)
        merged.count = self.count + other.count
        return merged

    def _check_compatible(self, other: "BloomFilter") -> None:
        if (self.nbits, self.k, self.seed) != (other.nbits, other.k, other.seed):
            raise ValueError(
                "incompatible filters: "
                f"({self.nbits},{self.k},{self.seed}) vs "
                f"({other.nbits},{other.k},{other.seed})"
            )

    def size_bytes(self) -> int:
        """Bytes this filter occupies on an index page."""
        return -(-self.nbits // 8)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"BloomFilter(nbits={self.nbits}, k={self.k}, "
            f"count={self.count}, fill={self.fill_fraction():.3f})"
        )
