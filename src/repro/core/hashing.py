"""Deterministic 64-bit hashing for Bloom filters.

Bloom filters need k independent hash functions.  We use the standard
Kirsch-Mitzenmacher double-hashing construction: two independent base
hashes ``h1`` and ``h2`` derive ``h_i = h1 + i * h2 (mod m)``, which is
provably as good as k independent hashes for Bloom filters.

The base hashes are splitmix64 finalizers with distinct seeds — fast,
stateless, deterministic across runs and processes (unlike Python's
builtin ``hash`` with string randomization).

Every function has a scalar and a vectorized (NumPy) form computing the
exact same arithmetic: :func:`bloom_positions_batch` serves both bulk
loading and the batch-probe engine (``BloomFilter.might_contain_many``,
``BFTree.search_many``), so batch and scalar probes agree bit-for-bit.
"""

from __future__ import annotations

MASK64 = (1 << 64) - 1

_SEED1 = 0x9E3779B97F4A7C15
_SEED2 = 0xC2B2AE3D27D4EB4F


def splitmix64(value: int) -> int:
    """One splitmix64 finalizer round over a 64-bit value."""
    value = (value + _SEED1) & MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & MASK64
    return (value ^ (value >> 31)) & MASK64


def hash_pair(key: int, seed: int = 0) -> tuple[int, int]:
    """Return two independent 64-bit hashes of ``key``.

    ``seed`` lets distinct Bloom filters decorrelate their bit patterns
    (used when several filters index overlapping key sets).
    """
    h1 = splitmix64((key ^ seed) & MASK64)
    h2 = splitmix64((key + _SEED2 + (seed << 1)) & MASK64)
    # h2 must be odd so that successive probe offsets cycle through all
    # residues for power-of-two table sizes as well.
    return h1, h2 | 1


def bloom_positions(key: int, k: int, nbits: int, seed: int = 0) -> list[int]:
    """The k bit positions ``key`` maps to in an ``nbits``-bit filter.

    Plain Kirsch-Mitzenmacher double hashing (an arithmetic progression
    ``h1 + i*h2 mod m``) degrades badly for the small, high-accuracy
    filters a BF-leaf uses (hundreds of bits, k up to ~20): measured fpp
    lands orders of magnitude above Equation 1.  We therefore re-mix the
    running hash per position, which behaves like k independent hashes at
    the cost of one splitmix64 round each.
    """
    if nbits <= 0:
        raise ValueError("nbits must be positive")
    h1, h2 = hash_pair(key, seed)
    positions = []
    acc = h1
    for _ in range(k):
        positions.append(acc % nbits)
        acc = splitmix64((acc + h2) & MASK64)
    return positions


def bloom_positions_batch(keys, k: int, nbits: int, seed: int = 0):
    """Vectorized :func:`bloom_positions` for a NumPy integer array.

    Returns a ``(len(keys), k)`` int array of bit positions, computed with
    the exact arithmetic of the scalar path (uint64 wrap-around), so bulk
    inserts and scalar probes agree bit-for-bit.
    """
    import numpy as np

    if nbits <= 0:
        raise ValueError("nbits must be positive")
    keys64 = np.asarray(keys).astype(np.uint64)
    with np.errstate(over="ignore"):
        h1 = _splitmix64_vec(keys64 ^ np.uint64(seed & MASK64))
        h2 = _splitmix64_vec(
            keys64 + np.uint64((_SEED2 + ((seed << 1) & MASK64)) & MASK64)
        )
        h2 = h2 | np.uint64(1)
        positions = np.empty((len(keys64), k), dtype=np.int64)
        acc = h1.copy()
        for i in range(k):
            positions[:, i] = (acc % np.uint64(nbits)).astype(np.int64)
            acc = _splitmix64_vec(acc + h2)
    return positions


def _splitmix64_vec(values):
    """NumPy counterpart of :func:`splitmix64` (same constants, wraps)."""
    import numpy as np

    with np.errstate(over="ignore"):
        v = values + np.uint64(_SEED1)
        v = (v ^ (v >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        v = (v ^ (v >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return v ^ (v >> np.uint64(31))


def keys_to_int_array(keys):
    """Canonicalize a batch of keys to a ``uint64`` NumPy array.

    The vectorized counterpart of :func:`key_to_int`: integer (and bool)
    arrays pass straight through, wrapping negatives mod 2**64 exactly as
    the scalar path's ``& MASK64`` masking does; any other element type is
    folded per element through :func:`key_to_int`.  Feeding the result to
    :func:`bloom_positions_batch` therefore yields the same bit positions
    as hashing each key scalarly.
    """
    import numpy as np

    arr = np.asarray(keys)
    if arr.dtype.kind in "iub":
        with np.errstate(over="ignore"):
            return arr.astype(np.uint64)
    return np.asarray(
        [key_to_int(key) & MASK64 for key in keys], dtype=np.uint64
    )


def key_to_int(key: object) -> int:
    """Canonicalize a key to an int for hashing.

    Integers pass through; bytes/str are folded with an FNV-1a loop.  This
    keeps the index generic over key types while the hot path stays integer
    based.
    """
    if isinstance(key, bool):  # bool is an int subclass; treat explicitly
        return int(key)
    if isinstance(key, int):
        return key
    if isinstance(key, str):
        key = key.encode("utf-8")
    if isinstance(key, bytes):
        acc = 0xCBF29CE484222325
        for byte in key:
            acc = ((acc ^ byte) * 0x100000001B3) & MASK64
        return acc
    raise TypeError(f"unhashable index key type: {type(key).__name__}")
